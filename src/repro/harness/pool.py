"""Persistent fork-based worker pool: one fleet per campaign, reused
across every wave and cell.

The durable layer's :func:`~repro.harness.durable._run_wave` forks a
fresh child per work unit per wave — correct, but a full campaign pays
the fork+import tax thousands of times and can never overlap work from
*different* cells.  This pool keeps ``K`` forked workers alive for the
whole campaign and drives them with a parent-side ready queue:

* **Work stealing by construction** — the parent holds one flat queue of
  runnable units; whichever worker finishes first is handed the next
  unit, regardless of which cell it came from.  Uneven cells therefore
  never serialize the tail.
* **Transparent replacement** — a worker that exceeds its unit's
  wall-clock budget is SIGKILLed and a fresh worker is forked in its
  place; a worker that dies mid-unit (OOM-killer, segfault) is detected
  and replaced the same way.  Either way the caller gets a standard
  :class:`~repro.harness.durable.UnitFailure` (kind ``timeout`` /
  ``crash``) and the durable retry ladder re-dispatches the unit with
  its *original* arguments — i.e. the same trial seeds.
* **Per-worker pipes, no shared locks** — each worker owns a dedicated
  duplex pipe and the parent multiplexes with
  :func:`multiprocessing.connection.wait`.  SIGKILLing a worker can
  therefore never wedge a queue lock another worker needs (the failure
  mode that permanently "breaks" :class:`concurrent.futures.ProcessPoolExecutor`).

Tasks must be *picklable* ``(fn, args, kwargs)`` triples (the fork
happened at pool creation, so closures cannot ride along).  Callers that
need closure-carrying units keep using the fork-per-unit wave — the
durable layer picks per unit.  Activate a pool for a call tree with
:func:`use_pool`; :func:`~repro.harness.runner.run_trials` and the
durable executors detect it via :func:`active_pool`.
"""

from __future__ import annotations

import contextlib
import contextvars
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from repro.harness.durable import UnitFailure

__all__ = ["PoolUnit", "WorkerPool", "active_pool", "use_pool"]


_ACTIVE_POOL: contextvars.ContextVar["WorkerPool | None"] = contextvars.ContextVar(
    "repro_worker_pool", default=None
)


@contextlib.contextmanager
def use_pool(pool: "WorkerPool | None"):
    """Make ``pool`` the campaign's execution substrate for the block:
    parallel ``run_trials`` chunks and durable waves with picklable specs
    route through it instead of forking fresh workers."""
    token = _ACTIVE_POOL.set(pool)
    try:
        yield pool
    finally:
        _ACTIVE_POOL.reset(token)


def active_pool() -> "WorkerPool | None":
    """The pool installed by :func:`use_pool`, if any."""
    return _ACTIVE_POOL.get()


@dataclass
class PoolUnit:
    """One schedulable work unit: a picklable call with an optional
    wall-clock budget."""

    name: str
    fn: Callable[..., Any]
    args: tuple = ()
    kwargs: dict = field(default_factory=dict)
    timeout: float | None = None


def _worker_main(conn) -> None:
    """Worker loop: receive ``("task", id, fn, args, kwargs)``, answer
    ``(id, "ok"|"err", payload)``; exit on ``("stop",)`` or parent death
    (EOF).  ``os._exit`` everywhere — a pool worker must never run the
    parent's atexit/teardown machinery."""
    # The fork snapshots the parent mid-campaign: drop any inherited
    # execution context so a worker never routes work back into itself.
    signal.signal(signal.SIGINT, signal.SIG_IGN)  # parent owns our lifecycle
    _ACTIVE_POOL.set(None)
    from repro.harness import durable

    durable._ACTIVE.set(None)
    code = 0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        except KeyboardInterrupt:  # pragma: no cover - SIGINT race pre-ignore
            continue
        if message[0] == "stop":
            break
        _, task_id, fn, args, kwargs = message
        try:
            payload = (task_id, "ok", fn(*args, **kwargs))
        except BaseException as exc:  # noqa: BLE001 - report, keep serving
            payload = (task_id, "err", f"{type(exc).__name__}: {exc}")
        try:
            conn.send(payload)
        except BaseException:  # parent went away mid-send
            code = 1
            break
    with contextlib.suppress(Exception):
        conn.close()
    os._exit(code)


class _Worker:
    """One persistent forked worker and its dedicated pipe."""

    def __init__(self, ctx):
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.process = ctx.Process(target=_worker_main, args=(child_conn,), daemon=True)
        self.process.start()
        child_conn.close()
        self.task_id: int | None = None
        self.deadline: float | None = None
        self.timeout: float | None = None

    @property
    def busy(self) -> bool:
        return self.task_id is not None

    def dispatch(self, task_id: int, unit: PoolUnit) -> None:
        self.conn.send(("task", task_id, unit.fn, unit.args, unit.kwargs))
        self.task_id = task_id
        self.timeout = unit.timeout
        self.deadline = None if unit.timeout is None else time.monotonic() + unit.timeout

    def clear(self) -> None:
        self.task_id = None
        self.deadline = None
        self.timeout = None

    def kill(self) -> None:
        with contextlib.suppress(Exception):
            if self.process.is_alive():
                self.process.kill()  # SIGKILL: hung workers ignore less
        self.process.join(timeout=5.0)
        with contextlib.suppress(Exception):
            self.conn.close()

    def stop(self) -> None:
        try:
            self.conn.send(("stop",))
        except Exception:
            pass
        self.process.join(timeout=2.0)
        if self.process.is_alive():  # pragma: no cover - stubborn worker
            self.kill()
        else:
            with contextlib.suppress(Exception):
                self.conn.close()


class WorkerPool:
    """``workers`` persistent forked processes fed from a parent-side
    ready queue (see module docstring).  Create once per campaign, reuse
    for every wave, ``shutdown()`` in a ``finally``."""

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if "fork" not in multiprocessing.get_all_start_methods():
            raise OSError("WorkerPool requires the fork start method (POSIX)")
        self._ctx = multiprocessing.get_context("fork")
        self._workers = [_Worker(self._ctx) for _ in range(workers)]
        self._closed = False
        #: Workers forked to replace killed/dead ones (observability).
        self.replacements = 0
        #: Units completed (ok or err) over the pool's lifetime.
        self.tasks_done = 0

    @property
    def size(self) -> int:
        return len(self._workers)

    def worker_pids(self) -> list[int]:
        return [w.process.pid for w in self._workers]

    def _replace(self, worker: _Worker) -> None:
        worker.kill()
        self._workers[self._workers.index(worker)] = _Worker(self._ctx)
        self.replacements += 1

    # -- scheduling ---------------------------------------------------------

    def run_units(
        self, units: Sequence[PoolUnit]
    ) -> tuple[dict[int, Any], dict[int, UnitFailure]]:
        """Run ``units`` to completion on the pool; returns per-index
        results and failures (mirror of
        :func:`~repro.harness.durable._run_wave`).

        Dispatch is pull-based: every idle worker immediately receives
        the next queued unit, so a wave mixing cheap and expensive units
        (or units from different cells) keeps all workers busy until the
        queue drains.  Timeouts SIGKILL-and-replace; worker death is a
        ``crash`` failure; neither cancels sibling units.
        """
        if self._closed:
            raise RuntimeError("pool is shut down")
        results: dict[int, Any] = {}
        failures: dict[int, UnitFailure] = {}
        queue: list[int] = list(range(len(units)))
        try:
            while queue or any(w.busy for w in self._workers):
                now = time.monotonic()
                # Feed every idle worker from the shared queue.
                for worker in self._workers:
                    if not queue:
                        break
                    if worker.busy:
                        continue
                    task_id = queue.pop(0)
                    try:
                        worker.dispatch(task_id, units[task_id])
                    except Exception:
                        # Worker died while idle: replace and retry the
                        # unit (it never started, so this is not a failure).
                        self._replace(worker)
                        queue.insert(0, task_id)
                        break
                busy = {w.conn: w for w in self._workers if w.busy}
                if not busy:
                    continue
                for conn in mp_connection.wait(list(busy), timeout=0.05):
                    worker = busy[conn]
                    task_id = worker.task_id
                    try:
                        reply_id, status, payload = conn.recv()
                    except (EOFError, OSError):
                        continue  # dead-worker sweep below handles it
                    if reply_id != task_id:  # pragma: no cover - stale reply
                        continue  # from a unit whose timeout already fired
                    self.tasks_done += 1
                    if status == "ok":
                        results[task_id] = payload
                    else:
                        failures[task_id] = UnitFailure(
                            "error", payload, units[task_id].name
                        )
                    worker.clear()
                now = time.monotonic()
                for worker in self._workers:
                    if not worker.busy:
                        continue
                    task_id = worker.task_id
                    unit = units[task_id]
                    if worker.deadline is not None and now >= worker.deadline:
                        failures[task_id] = UnitFailure(
                            "timeout",
                            f"exceeded {worker.timeout:.1f}s wall clock; "
                            "worker killed and replaced",
                            unit.name,
                        )
                        self.tasks_done += 1
                        self._replace(worker)
                    elif not worker.process.is_alive():
                        # Drain a result sent just before death.
                        payload = None
                        with contextlib.suppress(EOFError, OSError):
                            if worker.conn.poll(0):
                                payload = worker.conn.recv()
                        if payload is not None and payload[0] == task_id:
                            status, value = payload[1], payload[2]
                            if status == "ok":
                                results[task_id] = value
                            else:
                                failures[task_id] = UnitFailure(
                                    "error", value, unit.name
                                )
                        else:
                            failures[task_id] = UnitFailure(
                                "crash",
                                "worker died without reporting (exit code "
                                f"{worker.process.exitcode}); replaced",
                                unit.name,
                            )
                        self.tasks_done += 1
                        self._replace(worker)
        except BaseException:
            # Interrupted mid-wave (e.g. KeyboardInterrupt): the busy
            # workers hold stale tasks — replace them so the pool comes
            # back idle and reusable, then let the caller unwind.
            for worker in self._workers:
                if worker.busy:
                    self._replace(worker)
            raise
        return results, failures

    def submit(self, unit: PoolUnit) -> Any:
        """Run one unit; return its result or raise its
        :class:`UnitFailure`."""
        results, failures = self.run_units([unit])
        if failures:
            raise failures[0]
        return results[0]

    # -- lifecycle ----------------------------------------------------------

    def shutdown(self) -> None:
        """Stop every worker (graceful for idle, SIGKILL for stuck);
        idempotent."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.busy:
                worker.kill()
            else:
                worker.stop()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
