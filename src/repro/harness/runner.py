"""Seeded multi-trial execution.

The paper's guarantees hold *with high probability* (≥ 1 - 1/n), so every
measurement here repeats a run over independent seeded trials and reports
distributional summaries (the q90 of rounds-to-stabilize is the natural
empirical analogue of a w.h.p. bound).

``build`` callables receive a trial seed and return a fresh engine; trials
can fan out over processes when the builder is picklable (module-level
functions / :func:`functools.partial`), per the standard multiprocessing
constraint.  :func:`run_trials_batched` instead executes *all* trials of
one configuration as a single :class:`~repro.core.batched.BatchedVectorizedEngine`
run — the fast path for static-topology *and* isomorphic-churn sweeps
(relabelings of a shared base run permutation-natively).
"""

from __future__ import annotations

import os
import pickle
import warnings
import weakref
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.analysis.statistics import Summary, summarize
from repro.core.batched import BatchedAlgorithm, BatchedVectorizedEngine
from repro.core.trace import RunResult
from repro.graphs.dynamic import BatchedPermutedDynamicGraph, DynamicGraph
from repro.util.rng import make_rng

__all__ = [
    "TrialOutcome",
    "run_trials",
    "run_trials_batched",
    "trial_seeds_for",
    "trial_summary",
    "default_processes",
    "EngineLike",
    "UnpicklableBuilderWarning",
]

#: Environment variable giving the default worker-process count for
#: ``run_trials`` when ``processes`` is not passed explicitly.
PROCESSES_ENV = "REPRO_PROCESSES"


class UnpicklableBuilderWarning(UserWarning):
    """A process fan-out was requested but the trial builder cannot be
    pickled; the sweep fell back to ``processes=1`` with the same trial
    seeds (outcomes are identical — each trial is independently seeded).

    ``requested`` records the worker count that was ignored and
    ``reason`` the pickling error."""

    def __init__(self, requested: int, reason: str, source: str):
        self.requested = requested
        self.reason = reason
        self.source = source
        super().__init__(
            f"{source} requested {requested} worker processes, but the trial "
            f"builder is not picklable ({reason}); running serially with the "
            "same trial seeds"
        )


class EngineLike(Protocol):
    """Anything with a ``run(max_rounds, *, check_every) -> RunResult``."""

    def run(self, max_rounds: int, *, check_every: int = 1) -> RunResult: ...


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one trial."""

    seed: int
    stabilized: bool
    rounds: int
    rounds_after_last_activation: int


def trial_seeds_for(seed: int, trials: int) -> list[int]:
    """The deterministic trial-seed sequence every runner derives from ``seed``.

    Exposed so that alternative execution strategies (batched, distributed)
    reproduce exactly the trials the serial runner would run.
    """
    return [
        int(s)
        for s in make_rng(seed, "trial-seeds").integers(0, 2**31 - 1, size=trials)
    ]


def default_processes() -> int | None:
    """Worker-count default from the ``REPRO_PROCESSES`` env var (or ``None``)."""
    raw = os.environ.get(PROCESSES_ENV, "").strip()
    if not raw:
        return None
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{PROCESSES_ENV} must be an integer, got {raw!r}"
        ) from None
    return value if value > 1 else None


# Per-builder-object memo of the picklability probe (a sweep calls
# ``run_trials`` once per grid cell with the *same* builder object;
# re-serializing a megabyte closure every call was pure waste).  Weak
# keys keep dead builders from pinning memory; builders that cannot be
# weak-referenced simply re-probe.
_PICKLE_PROBE: "weakref.WeakKeyDictionary[Callable, tuple[bool, str]]" = (
    weakref.WeakKeyDictionary()
)
_WARNED_BUILDERS: "weakref.WeakSet" = weakref.WeakSet()


def _probe_builder_picklable(build: Callable) -> tuple[bool, str]:
    """``(picklable, reason)`` for a trial builder, memoized per object."""
    try:
        cached = _PICKLE_PROBE.get(build)
    except TypeError:
        cached = None
    if cached is not None:
        return cached
    try:
        pickle.dumps(build)
        result = (True, "")
    except Exception as exc:  # noqa: BLE001 - any pickling error disables fan-out
        result = (False, repr(exc))
    try:
        _PICKLE_PROBE[build] = result
    except TypeError:
        pass
    return result


def _warn_unpicklable(build: Callable, requested: int, reason: str, source: str) -> None:
    """Emit :class:`UnpicklableBuilderWarning` at most once per builder
    object (i.e. once per sweep, not once per ``run_trials`` call)."""
    try:
        if build in _WARNED_BUILDERS:
            return
        _WARNED_BUILDERS.add(build)
    except TypeError:
        pass
    warnings.warn(
        UnpicklableBuilderWarning(requested, reason, source), stacklevel=3
    )


def _one_trial(
    build: Callable[[int], EngineLike],
    seed: int,
    max_rounds: int,
    check_every: int,
) -> TrialOutcome:
    engine = build(seed)
    result = engine.run(max_rounds, check_every=check_every)
    return TrialOutcome(
        seed=seed,
        stabilized=result.stabilized,
        rounds=result.rounds,
        rounds_after_last_activation=result.rounds_after_last_activation,
    )


def _trial_chunk(
    build: Callable[[int], EngineLike],
    seeds: Sequence[int],
    max_rounds: int,
    check_every: int,
) -> list[TrialOutcome]:
    return [_one_trial(build, s, max_rounds, check_every) for s in seeds]


def run_trials(
    build: Callable[[int], EngineLike],
    *,
    trials: int,
    max_rounds: int,
    seed: int = 0,
    check_every: int = 1,
    processes: int | None = None,
) -> list[TrialOutcome]:
    """Run ``trials`` independent seeded executions of ``build``.

    Parameters
    ----------
    build
        ``build(trial_seed)`` must return a fresh engine.
    trials, max_rounds
        Number of repetitions and per-trial round horizon.
    seed
        Root seed; trial seeds are derived deterministically from it.
    check_every
        Convergence-check stride forwarded to the engine (checking every
        round is exact but can dominate runtime for cheap rounds).
    processes
        Fan out over this many worker processes.  ``None`` reads the
        ``REPRO_PROCESSES`` environment variable; unset/empty (or ≤ 1)
        runs serially.  Trial seeds are split into one contiguous chunk
        per worker, so cheap trials pay one pickling round-trip per
        worker instead of one per trial.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    from repro.harness import durable as _durable

    if _durable.active_policy() is not None:
        # A durable policy is active (e.g. inside a campaign cell):
        # execute through the timeout/retry/degradation ladder instead.
        return _durable.run_trials_durable(
            build,
            trials=trials,
            max_rounds=max_rounds,
            seed=seed,
            check_every=check_every,
            processes=processes,
            policy=_durable.active_policy(),
            budget=_durable.active_budget(),
        )
    trial_seeds = trial_seeds_for(seed, trials)
    from_env = processes is None
    if from_env:
        processes = default_processes()
    if processes is None or processes <= 1 or trials == 1:
        return _trial_chunk(build, trial_seeds, max_rounds, check_every)
    picklable, reason = _probe_builder_picklable(build)
    if not picklable:
        # Outcomes are identical either way (each trial is independently
        # seeded), so both the env-var default and an explicit request
        # degrade to the serial path deterministically, with one
        # structured warning instead of a hard error.
        source = f"{PROCESSES_ENV}={processes}" if from_env else f"processes={processes}"
        _warn_unpicklable(build, processes, reason, source)
        return _trial_chunk(build, trial_seeds, max_rounds, check_every)
    workers = min(processes, trials)
    chunks = [list(c) for c in np.array_split(trial_seeds, workers)]
    from repro.harness.pool import PoolUnit, active_pool

    persistent = active_pool()
    if persistent is not None:
        # Inside a campaign: reuse the persistent fleet instead of paying
        # a fresh executor's fork+teardown for this one call.  Chunking
        # and seed order are identical to the executor path.
        units = [
            PoolUnit(
                name=f"trial chunk {i + 1}/{len(chunks)} ({len(chunk)} trials)",
                fn=_trial_chunk,
                args=(build, chunk, max_rounds, check_every),
            )
            for i, chunk in enumerate(chunks)
        ]
        results, failures = persistent.run_units(units)
        if failures:
            raise next(iter(failures.values()))
        return [o for i in range(len(chunks)) for o in results[i]]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_trial_chunk, build, chunk, max_rounds, check_every)
            for chunk in chunks
        ]
        out: list[TrialOutcome] = []
        for f in futures:
            out.extend(f.result())
        return out


def run_trials_batched(
    build_batched: Callable[
        [Sequence[int]],
        tuple[
            DynamicGraph | BatchedPermutedDynamicGraph | Sequence[DynamicGraph],
            BatchedAlgorithm,
        ],
    ],
    *,
    trials: int,
    max_rounds: int,
    seed: int = 0,
    check_every: int = 1,
    activation_rounds: Sequence[int] | np.ndarray | None = None,
    fault_plan=None,
) -> list[TrialOutcome]:
    """Run all ``trials`` of one configuration as a single batched engine.

    The fast path for trial sweeps: one
    :class:`~repro.core.batched.BatchedVectorizedEngine` executes every
    trial simultaneously with a leading replica axis, so per-round NumPy
    dispatch overhead is paid once instead of once per trial.

    Parameters
    ----------
    build_batched
        ``build_batched(trial_seeds)`` returns the ``(dynamic_graph,
        batched_algorithm)`` pair for the whole batch — one shared
        :class:`~repro.graphs.dynamic.DynamicGraph` (static topologies),
        one dynamic graph per trial seed (per-trial topology randomness,
        e.g. churn relabelings keyed on the trial seed; relabelings of a
        shared base object take the engine's permutation-native fast
        path), or one
        :class:`~repro.graphs.dynamic.BatchedPermutedDynamicGraph`
        covering all replicas (e.g.
        :class:`~repro.graphs.adversary.BatchedPackingAdversary`).
    trials, max_rounds, seed, check_every
        As in :func:`run_trials`; the trial-seed sequence is identical,
        so outcome lists from the two runners describe the same trials.
    activation_rounds
        Optional shared activation schedule forwarded to the engine.
    fault_plan
        Optional :class:`~repro.faults.plan.FaultPlan` forwarded to the
        engine (the single-engine runner instead expects builders to
        embed the plan in the engines they construct).

    Returns
    -------
    The same ``list[TrialOutcome]`` shape :func:`run_trials` produces
    (one outcome per trial seed, in seed order).  The engines are not
    trace-identical — round randomness is drawn from a batch-wide stream
    — so distributions, not individual trials, are comparable; see
    ``tests/test_batched_cross_validation.py``.
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    from repro.harness import durable as _durable

    if _durable.active_policy() is not None:
        return _durable.run_trials_batched_durable(
            build_batched,
            trials=trials,
            max_rounds=max_rounds,
            seed=seed,
            check_every=check_every,
            activation_rounds=activation_rounds,
            fault_plan=fault_plan,
            policy=_durable.active_policy(),
            budget=_durable.active_budget(),
        )
    seeds = trial_seeds_for(seed, trials)
    return _run_batched_for_seeds(
        build_batched,
        seeds,
        max_rounds=max_rounds,
        check_every=check_every,
        activation_rounds=activation_rounds,
        fault_plan=fault_plan,
    )


def _run_batched_for_seeds(
    build_batched,
    seeds: Sequence[int],
    *,
    max_rounds: int,
    check_every: int = 1,
    activation_rounds: Sequence[int] | np.ndarray | None = None,
    fault_plan=None,
) -> list[TrialOutcome]:
    """Execute one batched-engine run over an explicit seed list.

    The extraction point the durable layer uses to run *sub-batches* of a
    degraded sweep: any contiguous (or arbitrary) subset of the canonical
    trial seeds runs through the identical engine path.
    """
    seeds = [int(s) for s in seeds]
    dynamic_graph, algorithm = build_batched(seeds)
    engine = BatchedVectorizedEngine(
        dynamic_graph,
        algorithm,
        seeds=seeds,
        activation_rounds=activation_rounds,
        fault_plan=fault_plan,
    )
    result = engine.run(max_rounds, check_every=check_every)
    return [
        TrialOutcome(
            seed=seeds[t],
            stabilized=bool(result.stabilized[t]),
            rounds=int(result.rounds[t]),
            rounds_after_last_activation=int(result.rounds_after_last_activation[t]),
        )
        for t in range(len(seeds))
    ]


def trial_summary(outcomes: Sequence[TrialOutcome], *, after_activation: bool = False) -> Summary:
    """Summarize rounds-to-stabilize across trials.

    Raises if any trial failed to stabilize — a horizon that truncates
    trials would silently bias the statistics, so it is an error instead.
    """
    bad = [o for o in outcomes if not o.stabilized]
    if bad:
        raise RuntimeError(
            f"{len(bad)}/{len(outcomes)} trials did not stabilize within the "
            "horizon; raise max_rounds"
        )
    values = [
        o.rounds_after_last_activation if after_activation else o.rounds
        for o in outcomes
    ]
    return summarize(values)
