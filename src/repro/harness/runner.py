"""Seeded multi-trial execution.

The paper's guarantees hold *with high probability* (≥ 1 - 1/n), so every
measurement here repeats a run over independent seeded trials and reports
distributional summaries (the q90 of rounds-to-stabilize is the natural
empirical analogue of a w.h.p. bound).

``build`` callables receive a trial seed and return a fresh engine; trials
can fan out over processes when the builder is picklable (module-level
functions / :func:`functools.partial`), per the standard multiprocessing
constraint.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.analysis.statistics import Summary, summarize
from repro.core.trace import RunResult
from repro.util.rng import make_rng

__all__ = ["TrialOutcome", "run_trials", "trial_summary", "EngineLike"]


class EngineLike(Protocol):
    """Anything with a ``run(max_rounds, *, check_every) -> RunResult``."""

    def run(self, max_rounds: int, *, check_every: int = 1) -> RunResult: ...


@dataclass(frozen=True)
class TrialOutcome:
    """Result of one trial."""

    seed: int
    stabilized: bool
    rounds: int
    rounds_after_last_activation: int


def _one_trial(
    build: Callable[[int], EngineLike],
    seed: int,
    max_rounds: int,
    check_every: int,
) -> TrialOutcome:
    engine = build(seed)
    result = engine.run(max_rounds, check_every=check_every)
    return TrialOutcome(
        seed=seed,
        stabilized=result.stabilized,
        rounds=result.rounds,
        rounds_after_last_activation=result.rounds_after_last_activation,
    )


def run_trials(
    build: Callable[[int], EngineLike],
    *,
    trials: int,
    max_rounds: int,
    seed: int = 0,
    check_every: int = 1,
    processes: int | None = None,
) -> list[TrialOutcome]:
    """Run ``trials`` independent seeded executions of ``build``.

    Parameters
    ----------
    build
        ``build(trial_seed)`` must return a fresh engine.
    trials, max_rounds
        Number of repetitions and per-trial round horizon.
    seed
        Root seed; trial seeds are derived deterministically from it.
    check_every
        Convergence-check stride forwarded to the engine (checking every
        round is exact but can dominate runtime for cheap rounds).
    processes
        Fan out over this many worker processes (``None`` = run serially).
    """
    if trials < 1:
        raise ValueError("trials must be >= 1")
    trial_seeds = [
        int(s) for s in make_rng(seed, "trial-seeds").integers(0, 2**31 - 1, size=trials)
    ]
    if processes is None or processes <= 1 or trials == 1:
        return [_one_trial(build, s, max_rounds, check_every) for s in trial_seeds]
    with ProcessPoolExecutor(max_workers=processes) as pool:
        futures = [
            pool.submit(_one_trial, build, s, max_rounds, check_every)
            for s in trial_seeds
        ]
        return [f.result() for f in futures]


def trial_summary(outcomes: Sequence[TrialOutcome], *, after_activation: bool = False) -> Summary:
    """Summarize rounds-to-stabilize across trials.

    Raises if any trial failed to stabilize — a horizon that truncates
    trials would silently bias the statistics, so it is an error instead.
    """
    bad = [o for o in outcomes if not o.stabilized]
    if bad:
        raise RuntimeError(
            f"{len(bad)}/{len(outcomes)} trials did not stabilize within the "
            "horizon; raise max_rounds"
        )
    values = [
        o.rounds_after_last_activation if after_activation else o.rounds
        for o in outcomes
    ]
    return summarize(values)
