"""Shape verification: does a measured table reproduce its paper claim?

Each experiment's claim reduces to a handful of checkable *shape*
conditions (orderings, slopes, bands — see docs/reproducing.md).  This
module encodes them once, as data-driven checks over result tables, so
the same logic serves the pytest benches, the CLI
(``repro experiments verify``), and programmatic use.

A check returns a :class:`CheckResult`; an experiment verifies when every
check passes.  Checks operate purely on the table (no re-simulation), so
they also run against archived JSON results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.statistics import loglog_slope
from repro.harness.tables import Table

__all__ = ["CheckResult", "verify_experiment", "verify_document", "VERIFIERS"]


@dataclass(frozen=True)
class CheckResult:
    """Outcome of one shape check."""

    name: str
    passed: bool
    detail: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        mark = "PASS" if self.passed else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


def _check(name: str, passed: bool, detail: str) -> CheckResult:
    return CheckResult(name=name, passed=bool(passed), detail=detail)


def _slope_check(table: Table, xcol: str, ycol: str, lo: float, hi: float) -> CheckResult:
    slope, r2 = loglog_slope(table.column(xcol), table.column(ycol))
    return _check(
        f"slope({ycol} vs {xcol}) in [{lo}, {hi}]",
        lo < slope < hi,
        f"slope={slope:.2f} (R^2={r2:.3f})",
    )


# -- per-experiment verifiers -------------------------------------------------


def _verify_e1(table: Table) -> list[CheckResult]:
    ok = all(table.column("gamma >= alpha/4"))
    bounded = all(
        g <= a + 1e-12 for a, g in zip(table.column("alpha"), table.column("gamma"))
    )
    return [
        _check("gamma >= alpha/4 everywhere", ok, f"{len(table.rows)} graphs"),
        _check("gamma <= alpha everywhere", bounded, "matching endpoints bound"),
    ]


def _verify_e2(table: Table) -> list[CheckResult]:
    floor = all(table.column("measured >= predicted"))
    per_workload: dict[str, list[float]] = {}
    for row in table.rows:
        _r, workload, _f, _pred, mean_f, _q10, _ok = row
        per_workload.setdefault(workload, []).append(mean_f)
    monotone = all(fr == sorted(fr) for fr in per_workload.values())
    harder = all(
        s < r
        for r, s in zip(per_workload.get("regular", []), per_workload.get("staircase", []))
    )
    return [
        _check("q10 fraction >= m/f(r) floor", floor, "Theorem V.2 floor"),
        _check("fractions monotone in r", monotone, str(per_workload)),
        _check("staircase strictly harder than regular", harder, "contention structure"),
    ]


def _verify_e3(table: Table) -> list[CheckResult]:
    checks = [_slope_check(table, "Delta", "rounds static", 1.4, 2.6)]
    static = table.column("rounds static")
    checks.append(_check("rounds monotone in Delta", static == sorted(static), str(static)))
    return checks


def _verify_e4(table: Table) -> list[CheckResult]:
    ratios = table.column("ratio")
    band = max(ratios) / min(ratios)
    checks = [
        _check("measured/(Delta^2 s) ratio in constant band", band < 4.0, f"band={band:.2f}"),
        _slope_check(table, "s (stars)", "rounds", 2.0, 3.8),
    ]
    return checks


def _verify_e5(table: Table) -> list[CheckResult]:
    return [_slope_check(table, "Delta", "rounds static", 1.4, 2.6)]


def _verify_e6(table: Table) -> list[CheckResult]:
    obliv = table.column("oblivious churn")
    adaptive = table.column("adaptive churn")
    return [
        _check(
            "oblivious churn flat (honest null result)",
            max(obliv) / min(obliv) < 8.0,
            f"{obliv}",
        ),
        _check(
            "adaptive: finite tau costs over tau=inf",
            adaptive[0] > 1.5 * adaptive[-1],
            f"tau=1: {adaptive[0]}, tau=inf: {adaptive[-1]}",
        ),
    ]


def _verify_e7(table: Table) -> list[CheckResult]:
    speedups = table.column("speedup")
    return [
        _check("b=1 speedup grows with tau", speedups[-1] > speedups[0], str(speedups)),
        _check("b=1 competitive at full stability", speedups[-1] > 0.8, f"{speedups[-1]:.2f}"),
    ]


def _verify_e8(table: Table) -> list[CheckResult]:
    ratios = table.column("ratio to sync")
    bits = table.column("b (tag bits)")
    return [
        _check("async within bounded factor of sync", all(r < 60 for r in ratios[1:]), str(ratios)),
        _check("async uses wider advertisements", bits[0] == 1 and all(b > 1 for b in bits[1:]), str(bits)),
    ]


def _verify_e9(table: Table) -> list[CheckResult]:
    med = dict(zip(table.column("scenario"), table.column("median rounds")))
    joined, fresh = med["join after convergence"], med["fresh start on union"]
    return [
        _check("join re-stabilizes in same order as fresh", joined < 5 * fresh, f"{joined} vs {fresh}")
    ]


def _verify_e10(table: Table) -> list[CheckResult]:
    deltas = table.column("Delta")
    b0 = table.column("mobile b=0")
    classical = table.column("classical")
    b1 = table.column("mobile b=1 (PPUSH)")
    slope, r2 = loglog_slope(deltas, b0)
    return [
        _check("mobile b=0 superlinear in Delta", slope > 1.4, f"slope={slope:.2f}"),
        _check("b=0 loses to classical at top Delta", b0[-1] > 2 * classical[-1], ""),
        _check("b=0 loses to PPUSH at top Delta", b0[-1] > 2 * b1[-1], ""),
    ]


def _verify_e11(table: Table) -> list[CheckResult]:
    ratio = table.column("static ratio")
    ring_static = table.column("ring static")
    ring_churn = table.column("ring tau=1")
    return [
        _check("static ring/regular ratio grows with n", ratio[-1] > ratio[0], str(ratio)),
        _check("churn-mixing erases the 1/alpha penalty", ring_churn[-1] <= ring_static[-1], ""),
    ]


def _verify_e12(table: Table) -> list[CheckResult]:
    obliv = table.column("oblivious tau=1")
    adaptive = table.column("adaptive tau=1")
    ordered = all(a >= o for o, a in zip(obliv, adaptive))
    return [
        _check("adaptive >= oblivious at every size", ordered, ""),
        _check(
            "adaptive clearly worse at top size",
            adaptive[-1] > 1.5 * obliv[-1],
            f"{adaptive[-1]} vs {obliv[-1]}",
        ),
    ]


def _verify_e13(table: Table) -> list[CheckResult]:
    means = table.column("good fraction (mean)")
    mins = table.column("good fraction (min)")
    return [
        _check("good-phase frequency >= 0.5 everywhere", all(m >= 0.5 for m in means), str(means)),
        _check("no cell collapses to zero", all(m > 0 for m in mins), str(mins)),
    ]


def _verify_e14(table: Table) -> list[CheckResult]:
    ratios = table.column("ratio")
    logs = table.column("log2(n)")
    ok = all(r <= 3 * l for r, l in zip(ratios, logs))
    return [_check("PPUSH/classical ratio within ~log n", ok, str(ratios))]


def _verify_e15(table: Table) -> list[CheckResult]:
    conns = {row[0]: row[2] for row in table.rows}
    return [
        _check(
            "async uses fewest connections on regular graph",
            conns["async bit convergence"] <= conns["blind gossip (b=0)"],
            str(conns),
        )
    ]


def _verify_e16(table: Table) -> list[CheckResult]:
    clique = table.column("clique rounds")
    floor = table.column("floor n-1")
    slope, _ = loglog_slope(table.column("n"), clique)
    return [
        _check("completion above information floor", all(c >= f for c, f in zip(clique, floor)), ""),
        _check("slope strictly between 1 and 2", 1.0 < slope < 2.0, f"slope={slope:.2f}"),
    ]


def _verify_e17(table: Table) -> list[CheckResult]:
    rows = {row[0]: (row[2], row[3]) for row in table.rows}
    rounds = [r for _, r in rows.values()]
    return [
        _check("clique fastest", rows["clique"][1] == min(rounds), ""),
        _check("double star slowest", rows["double star"][1] == max(rounds), ""),
    ]


def _verify_e18(table: Table) -> list[CheckResult]:
    return [
        _check("agreement+validity in every trial", all(table.column("agreement+validity")), ""),
        _check(
            "consensus overhead ~1x over bare election",
            all(0.5 <= o <= 2.0 for o in table.column("overhead")),
            str(table.column("overhead")),
        ),
    ]


def _verify_e19(table: Table) -> list[CheckResult]:
    means = table.column("productive fraction (mean)")
    mins = table.column("productive fraction (min)")
    return [
        _check("productive fraction >= 0.5 everywhere", all(m >= 0.5 for m in means), str(means)),
        _check("no workload collapses to zero", all(m > 0 for m in mins), str(mins)),
    ]


def _verify_a1(table: Table) -> list[CheckResult]:
    rounds = dict(zip(table.column("multiplier"), table.column("median rounds")))
    paper = rounds.get(2)
    ok = paper is not None and all(paper < 4 * r + 1e-9 for r in rounds.values())
    return [_check("paper multiplier 2 never loses badly", ok, str(rounds))]


def _verify_a2(table: Table) -> list[CheckResult]:
    rounds = table.column("median rounds")
    bs = table.column("b (advert bits)")
    return [
        _check("rounds grow with k", rounds[-1] >= rounds[0], str(rounds)),
        _check("advert width grows with k", bs == sorted(bs), str(bs)),
    ]


def _verify_r1(table: Table) -> list[CheckResult]:
    ps = table.column("drop p")
    med_g = table.column("gossip median")
    med_p = table.column("PPUSH median")
    predicted = table.column("1/(1-p)")
    monotone = all(
        b >= 0.9 * a for a, b in zip(med_g, med_g[1:])
    ) and all(b >= 0.9 * a for a, b in zip(med_p, med_p[1:]))
    in_band = True
    for i, p in enumerate(ps):
        if p <= 0:
            continue
        for col in (table.column("gossip inflation"), table.column("PPUSH inflation")):
            if not 0.4 * predicted[i] <= col[i] <= 2.5 * predicted[i]:
                in_band = False
    return [
        _check(
            "stabilization inflates with drop p",
            monotone,
            f"gossip {med_g}, PPUSH {med_p}",
        ),
        _check(
            "inflation tracks 1/(1-p) within [0.4x, 2.5x]",
            in_band,
            f"predicted {predicted}",
        ),
    ]


def _verify_r2(table: Table) -> list[CheckResult]:
    fractions = table.column("fraction")
    ratios = table.column("recovery / fresh")
    bounded = all(r < 3 for r in ratios)
    full = [r for f, r in zip(fractions, ratios) if f >= 1.0]
    full_ok = all(0.25 < r < 3 for r in full) if full else True
    return [
        _check(
            "recovery within 3x of a fresh run for every fraction",
            bounded,
            str(ratios),
        ),
        _check(
            "full corruption behaves like a fresh start",
            full_ok,
            f"fraction-1.0 ratio(s): {full}",
        ),
    ]


def _verify_r3(table: Table) -> list[CheckResult]:
    fracs = table.column("crash fraction")
    meds = table.column("median rounds")
    recov = table.column("recovery after quiesce")
    clean = next(m for f, m in zip(fracs, meds) if f == 0)
    survived = all(m > 0 for m in meds)
    ok = all(r <= 5 * max(clean, 1.0) for r in recov)
    return [
        _check(
            "every crash level still stabilizes",
            survived,
            f"medians {meds}",
        ),
        _check(
            "post-quiesce recovery within 5x of the clean run",
            ok,
            f"recoveries {recov} vs clean {clean}",
        ),
    ]


def _verify_a3(table: Table) -> list[CheckResult]:
    rows = {row[0]: (row[1], row[2]) for row in table.rows}
    both = rows["both"]
    ok = all(
        rows[d][0] >= both[0] and rows[d][1] >= both[1] for d in ("push", "pull")
    )
    return [_check("symmetric PUSH-PULL dominates both restrictions", ok, str(rows))]


def _verify_a4(table: Table) -> list[CheckResult]:
    deltas = table.column("delta")
    ticks = table.column("median ticks")
    ratios = table.column("ratio to sync rounds")
    # Near-monotone: at small Delta the random stagger can break the
    # lock-step proposal collisions and win back its dilation, so allow
    # 20% dips — but the largest Delta must strictly cost more than 1.
    monotone = (
        all(b >= 0.8 * a for a, b in zip(ticks, ticks[1:]))
        and ticks[-1] > ticks[0]
    )
    # An async exchange spans propose -> connect -> deliver, so even at
    # Delta=1 one synchronous round costs a small constant in ticks.
    anchored = 1.0 <= ratios[0] <= 8.0
    span = (ticks[-1] / ticks[0]) / (deltas[-1] / deltas[0])
    graceful = 0.25 <= span <= 4.0
    return [
        _check("ticks near-monotone in Delta", monotone, str(ticks)),
        _check(
            "Delta=1 within a constant factor of sync rounds",
            anchored,
            f"ratio={ratios[0]:.2f}",
        ),
        _check(
            "degradation roughly linear in Delta",
            graceful,
            f"tick growth / Delta growth = {span:.2f}",
        ),
    ]


def _verify_a5(table: Table) -> list[CheckResult]:
    deltas = table.column("delta")
    slow = table.column("slowdown")
    rand = table.column("random median")
    adv = table.column("adversarial median")
    dominates = all(
        s >= (0.95 if d == 1 else 1.1) for d, s in zip(deltas, slow)
    )
    finite = all(m > 0 for m in rand + adv)
    grows = slow[-1] >= slow[0]
    return [
        _check(
            "adversarial schedule dominates random",
            dominates,
            f"slowdowns {[f'{s:.2f}' for s in slow]}",
        ),
        _check(
            "bounded delay keeps stabilization finite",
            finite,
            f"adversarial medians {adv}",
        ),
        _check("adversary's edge grows with Delta", grows, str(slow)),
    ]


def _verify_s1(table: Table) -> list[CheckResult]:
    return [
        _check(
            "every trial stabilized at every n",
            all(table.column("all stabilized")),
            f"{len(table.rows)} sizes",
        ),
        # Polylog growth: at constant Delta on expanders the rounds-vs-n
        # exponent must stay far below linear (log^2 n over this range
        # fits a log-log slope of ~0.1-0.3).
        _slope_check(table, "n", "median rounds", -0.2, 0.45),
    ]


def _verify_tournament(table: Table) -> list[CheckResult]:
    import math as _math

    adversaries = {str(a) for a in table.column("adversary")}
    survival = [float(s) for s in table.column("survival")]
    baseline = [
        (float(s), float(i))
        for a, s, i in zip(
            table.column("adversary"), survival, table.column("inflation")
        )
        if a == "none"
    ]
    required = {"none", "assassin", "openworld"}
    return [
        _check(
            "adversary grid covers >= 4 adversaries incl. open-world + assassin",
            len(adversaries) >= 4 and required <= adversaries,
            f"adversaries: {sorted(adversaries)}",
        ),
        _check(
            "faultless baseline survives every tau with inflation 1",
            bool(baseline)
            and all(s == 1.0 and _math.isclose(i, 1.0) for s, i in baseline),
            f"{len(baseline)} baseline cells",
        ),
        _check(
            "survival rates are proper fractions",
            all(0.0 <= s <= 1.0 for s in survival),
            f"{len(survival)} cells",
        ),
        _check(
            "inflation defined (finite) wherever a trial survived",
            all(
                _math.isfinite(float(i)) or float(s) == 0.0
                for s, i in zip(survival, table.column("inflation"))
            ),
            "inf only on zero-survivor cells",
        ),
    ]


VERIFIERS: dict[str, Callable[[Table], list[CheckResult]]] = {
    "E1": _verify_e1,
    "E2": _verify_e2,
    "E3": _verify_e3,
    "E4": _verify_e4,
    "E5": _verify_e5,
    "E6": _verify_e6,
    "E7": _verify_e7,
    "E8": _verify_e8,
    "E9": _verify_e9,
    "E10": _verify_e10,
    "E11": _verify_e11,
    "E12": _verify_e12,
    "E13": _verify_e13,
    "E14": _verify_e14,
    "E15": _verify_e15,
    "E16": _verify_e16,
    "E17": _verify_e17,
    "E18": _verify_e18,
    "E19": _verify_e19,
    "A1": _verify_a1,
    "A2": _verify_a2,
    "A3": _verify_a3,
    "A4": _verify_a4,
    "A5": _verify_a5,
    "R1": _verify_r1,
    "R2": _verify_r2,
    "R3": _verify_r3,
    "S1": _verify_s1,
    "T1": _verify_tournament,
    "T2": _verify_tournament,
    "T3": _verify_tournament,
}


def verify_experiment(exp_id: str, table: Table) -> list[CheckResult]:
    """Run the registered shape checks for ``exp_id`` over ``table``."""
    if exp_id not in VERIFIERS:
        raise KeyError(f"no verifier for {exp_id!r}; known: {sorted(VERIFIERS)}")
    return VERIFIERS[exp_id](table)


def verify_document(doc) -> list[CheckResult]:
    """Verify a saved :class:`~repro.harness.persistence.ResultDocument`
    (e.g. a campaign checkpoint) against its experiment's shape checks."""
    return verify_experiment(doc.exp_id, doc.table)
