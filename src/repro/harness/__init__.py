"""Experiment harness: trial running, sweeps, tables, and the registry.

Use :func:`~repro.harness.experiments.run_experiment` to regenerate any of
the paper-claim reproductions and extensions (``E1``-``E19``) or
ablations (``A1``-``A3``); each returns an ASCII
:class:`~repro.harness.tables.Table`, and
:func:`~repro.harness.verify.verify_experiment` checks a table against
its claim's shape conditions.
"""

from repro.harness.runner import (
    TrialOutcome,
    UnpicklableBuilderWarning,
    run_trials,
    run_trials_batched,
    trial_seeds_for,
    trial_summary,
)
from repro.harness.sweep import grid, geometric_range
from repro.harness.tables import Table
from repro.harness.experiments import (
    EXPERIMENTS,
    Experiment,
    registry_order,
    run_experiment,
)
from repro.harness.persistence import (
    ResultLoadError,
    atomic_write_text,
    load_document,
    load_table,
    quarantine_file,
    save_table,
)
from repro.harness.durable import (
    DurablePolicy,
    FailureBudget,
    FailureBudgetExceeded,
    TrialCheckpointStore,
    run_trials_batched_durable,
    run_trials_durable,
    use_policy,
)
from repro.harness.pool import PoolUnit, WorkerPool, active_pool, use_pool
from repro.harness.campaign import (
    CampaignConfig,
    CampaignReport,
    render_campaign_text,
    run_campaign,
)
from repro.harness.reporting import build_report, collect_documents, write_report
from repro.harness.verify import CheckResult, verify_document, verify_experiment

__all__ = [
    "TrialOutcome",
    "UnpicklableBuilderWarning",
    "run_trials",
    "run_trials_batched",
    "trial_seeds_for",
    "trial_summary",
    "grid",
    "geometric_range",
    "Table",
    "EXPERIMENTS",
    "Experiment",
    "registry_order",
    "run_experiment",
    "save_table",
    "load_table",
    "load_document",
    "ResultLoadError",
    "atomic_write_text",
    "quarantine_file",
    "DurablePolicy",
    "FailureBudget",
    "FailureBudgetExceeded",
    "TrialCheckpointStore",
    "run_trials_durable",
    "run_trials_batched_durable",
    "use_policy",
    "PoolUnit",
    "WorkerPool",
    "active_pool",
    "use_pool",
    "CampaignConfig",
    "CampaignReport",
    "run_campaign",
    "render_campaign_text",
    "build_report",
    "collect_documents",
    "write_report",
    "CheckResult",
    "verify_experiment",
    "verify_document",
]
