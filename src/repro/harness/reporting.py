"""Markdown report generation from saved experiment results.

``pytest benchmarks/ --benchmark-only`` leaves one JSON document per
experiment under ``benchmarks/results/``; :func:`build_report` assembles
them into a single markdown document in registry order (the same layout
EXPERIMENTS.md follows), so the results archive can be regenerated without
re-running any sweep.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.harness.persistence import ResultDocument, load_document

__all__ = ["collect_documents", "build_report", "write_report"]


def _registry_order(exp_id: str) -> tuple:
    """Sort key: E1..E14 numerically, then A1..A3."""
    kind = 0 if exp_id.startswith("E") else 1
    try:
        num = int(exp_id[1:])
    except ValueError:
        num = 0
    return (kind, num, exp_id)


def collect_documents(results_dir: str | Path) -> list[ResultDocument]:
    """Load every ``*.json`` result under ``results_dir``, registry-ordered."""
    results_dir = Path(results_dir)
    docs = [load_document(p) for p in sorted(results_dir.glob("*.json"))]
    return sorted(docs, key=lambda d: _registry_order(d.exp_id))


def build_report(docs: list[ResultDocument], *, title: str | None = None) -> str:
    """Assemble result documents into one markdown report."""
    from repro.harness.experiments import EXPERIMENTS

    lines = [title or "# Experiment results", ""]
    if docs:
        profiles = sorted({d.profile for d in docs})
        versions = sorted({d.package_version for d in docs})
        newest = max(d.created_at for d in docs)
        lines += [
            f"Profiles: {', '.join(profiles)} · repro {', '.join(versions)} · "
            f"generated {time.strftime('%Y-%m-%d %H:%M', time.localtime(newest))}",
            "",
        ]
    for doc in docs:
        claim = (
            EXPERIMENTS[doc.exp_id].claim if doc.exp_id in EXPERIMENTS else "(unknown)"
        )
        lines += [
            f"## {doc.exp_id} — {claim}",
            "",
            "```",
            doc.table.render(),
            "```",
            "",
        ]
    return "\n".join(lines)


def write_report(
    results_dir: str | Path, output: str | Path, *, title: str | None = None
) -> Path:
    """Collect results and write the assembled report to ``output``."""
    docs = collect_documents(results_dir)
    output = Path(output)
    output.write_text(build_report(docs, title=title) + "\n")
    return output
