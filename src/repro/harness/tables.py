"""ASCII tables for experiment output.

Every experiment renders its result through one of these so that the
examples, benchmark harness, and EXPERIMENTS.md all show the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

__all__ = ["Table", "format_cell"]


def format_cell(value: object) -> str:
    """Render one cell: floats get 4 significant digits, rest ``str()``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


@dataclass
class Table:
    """A titled grid of experiment results.

    Attributes
    ----------
    title
        Experiment heading (includes the experiment id, e.g. ``"E3: …"``).
    columns
        Column headers.
    rows
        Data rows (any cell type; rendered via :func:`format_cell`).
    notes
        Free-form footnotes (paper claim, interpretation).
    """

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def column(self, name: str) -> list[object]:
        """Extract one column by header name."""
        idx = list(self.columns).index(name)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Render the table as aligned ASCII text."""
        header = [str(c) for c in self.columns]
        body = [[format_cell(c) for c in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title, "=" * len(self.title)]
        lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append(sep)
        for r in body:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(r, widths)))
        for note in self.notes:
            lines.append(f"  * {note}")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """Render as CSV (header + rows; notes are omitted)."""
        import csv
        import io

        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(self.columns)
        for row in self.rows:
            writer.writerow(row)
        return buf.getvalue()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()
