"""Parameter grids for experiment sweeps."""

from __future__ import annotations

from itertools import product
from typing import Iterable, Mapping, Sequence

__all__ = ["grid", "geometric_range"]


def grid(**params: Sequence[object]) -> list[dict[str, object]]:
    """Cartesian product of named parameter lists, as dicts.

    >>> grid(n=[8, 16], tau=[1, 2])
    [{'n': 8, 'tau': 1}, {'n': 8, 'tau': 2}, {'n': 16, 'tau': 1}, {'n': 16, 'tau': 2}]
    """
    if not params:
        return [{}]
    names = list(params)
    return [dict(zip(names, combo)) for combo in product(*(params[k] for k in names))]


def geometric_range(start: int, stop: int, factor: int = 2) -> list[int]:
    """Geometric integer range ``start, start·f, … ≤ stop`` (inclusive)."""
    if start < 1 or factor < 2 or stop < start:
        raise ValueError("need start >= 1, factor >= 2, stop >= start")
    out = []
    v = start
    while v <= stop:
        out.append(v)
        v *= factor
    return out
