"""Resumable experiment campaigns over the full registry.

A *campaign* runs a set of registered experiments (by default all of
them, in :func:`~repro.harness.experiments.registry_order`) as one
durable unit of work:

* each finished experiment **cell** is persisted immediately as a
  crash-safe checkpoint (``<exp_id>-<profile>.json`` under the campaign
  directory, written via :func:`~repro.harness.persistence.save_table`'s
  atomic temp-file + ``os.replace`` + fsync path, content-hashed);
* a killed campaign **resumes**: ``resume=True`` reloads every valid
  checkpoint instead of re-running its cell, quarantines corrupt or
  truncated ones (``*.quarantined``), and re-runs exactly the missing
  cells — since every cell is deterministically seeded, the resumed
  tables are bit-identical to an uninterrupted run;
* cells execute under a :class:`~repro.harness.durable.DurablePolicy`
  (hung-trial timeouts, bounded retries with exponential backoff, a
  campaign-wide failure budget) and, when any timeout is configured, in
  a forked child so a whole wedged cell can be killed and retried;
* a campaign-level **degradation ladder** mirrors the trial-level one:
  a cell whose profile requests ``engine="batched"`` falls back to
  ``engine="single"`` with ``processes=K`` and finally serial
  ``processes=1`` if the batched kernel keeps dying (same trial seeds;
  see the equivalence contract in :mod:`repro.harness.durable`);
* with ``pool_workers=K`` the whole registry runs on the **parallel
  execution plane**: one persistent :class:`~repro.harness.pool.WorkerPool`
  executes all runnable cells with work stealing, graphs are shared
  zero-copy through :mod:`repro.util.shm`, and every durable guarantee
  above (timeouts, retries, budgets, ladders, atomic checkpoints,
  bit-identical resume) is preserved — ``pool_workers=1`` degrades to
  the serial schedule with identical tables.

:func:`render_campaign_text` regenerates the ``standard_results.txt`` /
``quick_results.txt`` archive text purely from checkpoints, so a
completed campaign directory is sufficient to rebuild the published
tables without re-running anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.harness.durable import (
    DurablePolicy,
    FailureBudget,
    FailureBudgetExceeded,
    FailureEvent,
    UnitFailure,
    run_isolated,
    use_policy,
)
from repro.harness.experiments import EXPERIMENTS, registry_order, run_experiment
from repro.harness.persistence import (
    ResultDocument,
    load_document,
    quarantine_file,
    save_table,
)
from repro.harness.verify import VERIFIERS, verify_experiment

__all__ = [
    "CampaignConfig",
    "CellResult",
    "CampaignReport",
    "checkpoint_path",
    "run_campaign",
    "render_campaign_text",
]


@dataclass(frozen=True)
class CampaignConfig:
    """Everything that defines one campaign run.

    ``overrides`` maps experiment id -> extra kwargs merged over the
    profile kwargs (used by tests to shrink cells; production campaigns
    leave it empty so checkpoints reproduce the published tables).
    ``isolate`` forces (or forbids) forked per-cell execution; the
    default forks exactly when a timeout is configured, since killing a
    wedged cell requires it to live in a child process.
    """

    checkpoint_dir: str | Path
    profile: str = "quick"
    exp_ids: Sequence[str] | None = None
    resume: bool = False
    timeout_per_trial: float | None = None
    timeout_per_experiment: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.5
    failure_budget: int = 16
    processes: int | None = None
    verify: bool = True
    overrides: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    isolate: bool | None = None
    #: Run cells on a persistent worker pool of this size (the parallel
    #: execution plane).  ``None`` keeps the serial scheduler; ``1`` still
    #: exercises the pool (useful to prove it degrades to serial).
    pool_workers: int | None = None
    #: Publish built graphs to the shared-memory plane so pool workers map
    #: them zero-copy and cells sharing a base CSR build it once.
    shared_graphs: bool = True

    def policy(self) -> DurablePolicy:
        return DurablePolicy(
            timeout_per_trial=self.timeout_per_trial,
            max_retries=self.max_retries,
            backoff_base=self.backoff_base,
            failure_budget=self.failure_budget,
            processes=self.processes,
        )

    @property
    def isolate_cells(self) -> bool:
        if self.isolate is not None:
            return self.isolate
        return (
            self.timeout_per_trial is not None
            or self.timeout_per_experiment is not None
        )


@dataclass
class CellResult:
    """Outcome of one experiment cell within a campaign."""

    exp_id: str
    status: str  # "completed" | "resumed" | "failed"
    elapsed_s: float = 0.0
    attempts: int = 0
    tier: str = "profile"
    checks_passed: int | None = None
    checks_total: int | None = None
    error: str | None = None
    path: Path | None = None

    @property
    def ok(self) -> bool:
        return self.status in ("completed", "resumed") and (
            self.checks_passed is None or self.checks_passed == self.checks_total
        )


@dataclass
class CampaignReport:
    """What a campaign did: per-cell results plus failure accounting."""

    profile: str
    checkpoint_dir: Path
    cells: list[CellResult] = field(default_factory=list)
    failures: list[FailureEvent] = field(default_factory=list)
    aborted: str | None = None

    @property
    def ok(self) -> bool:
        return self.aborted is None and all(c.ok for c in self.cells)

    def summary(self) -> str:
        done = sum(1 for c in self.cells if c.status == "completed")
        resumed = sum(1 for c in self.cells if c.status == "resumed")
        failed = sum(1 for c in self.cells if c.status == "failed")
        parts = [
            f"campaign [{self.profile}] in {self.checkpoint_dir}:",
            f"{done} completed, {resumed} resumed, {failed} failed,",
            f"{len(self.failures)} failure events",
        ]
        if self.aborted:
            parts.append(f"(ABORTED: {self.aborted})")
        return " ".join(parts)


def checkpoint_path(directory: str | Path, exp_id: str, profile: str) -> Path:
    """The checkpoint file one cell writes: ``<dir>/<exp_id>-<profile>.json``."""
    return Path(directory) / f"{exp_id}-{profile}.json"


def _cell_tiers(config: CampaignConfig, exp_id: str) -> list[tuple[str, dict]]:
    """The degradation ladder for one cell: profile kwargs as-is, then —
    only for cells that request the batched engine — the single-engine
    process tier and the serial tier."""
    exp = EXPERIMENTS[exp_id]
    kwargs = dict(exp.quick if config.profile == "quick" else exp.standard)
    kwargs.update(config.overrides.get(exp_id, {}))
    tiers: list[tuple[str, dict]] = [("profile", {})]
    if kwargs.get("engine") == "batched":
        k = config.processes or 2
        tiers.append((f"single+processes={k}", {"engine": "single"}))
        tiers.append(("single+serial", {"engine": "single"}))
    return tiers


def _cell_call(
    config: CampaignConfig,
    exp_id: str,
    tier: str,
    tier_overrides: dict,
    policy: DurablePolicy,
    budget_remaining: int,
) -> Callable[[], tuple[object, float, list[FailureEvent]]]:
    """Build the thunk that runs one cell at one ladder tier.

    Returns ``(table, elapsed_s, failure_events)`` — the events are the
    trial-level failures the durable runner absorbed inside the cell, so
    the campaign can charge them against its own budget even when the
    cell ran in a forked child."""
    overrides = dict(config.overrides.get(exp_id, {}))
    overrides.update(tier_overrides)
    if tier == "single+serial":
        cell_policy = replace(policy, processes=1, failure_budget=budget_remaining)
    elif tier.startswith("single+processes"):
        cell_policy = replace(
            policy,
            processes=config.processes or 2,
            failure_budget=budget_remaining,
        )
    else:
        cell_policy = replace(policy, failure_budget=budget_remaining)

    def call() -> tuple[object, float, list[FailureEvent]]:
        cell_budget = cell_policy.new_budget()
        start = time.perf_counter()
        with use_policy(cell_policy, cell_budget):
            table = run_experiment(exp_id, config.profile, **overrides)
        return table, time.perf_counter() - start, cell_budget.events

    return call


def _try_resume(
    config: CampaignConfig,
    exp_id: str,
    path: Path,
    progress: Callable[[str], None],
) -> CellResult | None:
    """Reload an existing checkpoint, quarantining it when invalid.

    Returns the resumed :class:`CellResult`, or ``None`` when the cell
    must (re-)run — because the file is absent, corrupt, or describes a
    different experiment/profile."""
    if not path.exists():
        return None
    doc = load_document(path, strict=False)
    if doc is None or doc.exp_id != exp_id or doc.profile != config.profile:
        quarantined = quarantine_file(path)
        progress(f"{exp_id}: checkpoint invalid, quarantined -> {quarantined.name}")
        return None
    if not config.resume:
        return None  # valid checkpoint, but a fresh run was requested
    result = CellResult(exp_id=exp_id, status="resumed", path=path)
    meta = doc.extra.get("campaign", {})
    result.elapsed_s = float(meta.get("elapsed_s", 0.0))
    result.tier = str(meta.get("tier", "profile"))
    if config.verify and exp_id in VERIFIERS:
        checks = verify_experiment(exp_id, doc.table)
        result.checks_passed = sum(1 for c in checks if c.passed)
        result.checks_total = len(checks)
    progress(f"{exp_id}: resumed from checkpoint ({path.name})")
    return result


def run_campaign(
    config: CampaignConfig,
    *,
    progress: Callable[[str], None] | None = None,
) -> CampaignReport:
    """Run (or resume) a campaign; returns the per-cell report.

    A failed cell (all ladder tiers exhausted) is recorded and the
    campaign moves on — except when the campaign-wide failure budget is
    exceeded, which aborts the remaining cells immediately.
    """
    progress = progress or (lambda line: None)
    if config.pool_workers is not None:
        return _run_campaign_pooled(config, progress)
    directory = Path(config.checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    order = registry_order(config.exp_ids)
    policy = config.policy()
    budget = policy.new_budget()
    report = CampaignReport(profile=config.profile, checkpoint_dir=directory)

    for exp_id in order:
        path = checkpoint_path(directory, exp_id, config.profile)
        resumed = _try_resume(config, exp_id, path, progress)
        if resumed is not None:
            report.cells.append(resumed)
            continue
        try:
            result = _run_cell(config, exp_id, path, policy, budget, progress)
        except FailureBudgetExceeded as exc:
            report.aborted = str(exc)
            report.failures = list(budget.events)
            progress(f"campaign aborted: {exc}")
            return report
        report.cells.append(result)
    report.failures = list(budget.events)
    return report


def _run_cell(
    config: CampaignConfig,
    exp_id: str,
    path: Path,
    policy: DurablePolicy,
    budget: FailureBudget,
    progress: Callable[[str], None],
) -> CellResult:
    result = CellResult(exp_id=exp_id, status="failed", path=path)
    last_error: str | None = None
    for tier, tier_overrides in _cell_tiers(config, exp_id):
        for attempt in range(config.max_retries + 1):
            if attempt:
                policy.sleep(policy.backoff_delay(attempt - 1))
            result.attempts += 1
            call = _cell_call(config, exp_id, tier, tier_overrides, policy, budget.remaining)
            try:
                if config.isolate_cells:
                    table, elapsed, events = run_isolated(
                        call,
                        timeout=config.timeout_per_experiment,
                        unit=f"cell {exp_id} [{tier}]",
                    )
                else:
                    table, elapsed, events = call()
            except UnitFailure as exc:
                budget.spend(
                    FailureEvent(kind=exc.kind, detail=exc.detail, tier=tier, unit=exc.unit)
                )
                last_error = str(exc)
                progress(f"{exp_id}: {tier} attempt {attempt + 1} failed: {exc}")
                if "FailureBudgetExceeded" in exc.detail:
                    raise FailureBudgetExceeded(exc.detail)
                if exc.degrade_now:
                    break  # deterministic failure: straight to the next tier
                continue
            except FailureBudgetExceeded:
                raise
            except Exception as exc:  # noqa: BLE001 - in-process cell failure
                budget.spend(
                    FailureEvent(
                        kind="error",
                        detail=f"{type(exc).__name__}: {exc}",
                        tier=tier,
                        unit=f"cell {exp_id}",
                    )
                )
                last_error = f"{type(exc).__name__}: {exc}"
                progress(f"{exp_id}: {tier} attempt {attempt + 1} failed: {last_error}")
                if isinstance(exc, MemoryError):
                    break
                continue
            # Success: charge the cell's internal trial-level failures to
            # the campaign budget, verify, checkpoint, and report.
            budget.absorb(events)
            result.status = "completed"
            result.elapsed_s = elapsed
            result.tier = tier
            if config.verify and exp_id in VERIFIERS:
                checks = verify_experiment(exp_id, table)
                result.checks_passed = sum(1 for c in checks if c.passed)
                result.checks_total = len(checks)
            save_table(
                table,
                path,
                exp_id=exp_id,
                profile=config.profile,
                extra={
                    "campaign": {
                        "elapsed_s": elapsed,
                        "tier": tier,
                        "attempts": result.attempts,
                        "checks_passed": result.checks_passed,
                        "checks_total": result.checks_total,
                    }
                },
            )
            verdict = (
                ""
                if result.checks_total is None
                else f", checks {result.checks_passed}/{result.checks_total}"
            )
            progress(
                f"{exp_id}: completed in {elapsed:.1f}s [{tier}]{verdict}"
            )
            return result
        # retries at this tier exhausted (or deterministic failure): degrade
    result.error = last_error
    progress(f"{exp_id}: FAILED after {result.attempts} attempts: {last_error}")
    return result


# ---------------------------------------------------------------------------
# Parallel execution plane: persistent pool + shared graphs + work stealing
# ---------------------------------------------------------------------------


def _cell_policy_kwargs(config: CampaignConfig, tier: str, budget_remaining: int) -> dict:
    """Picklable :class:`DurablePolicy` kwargs mirroring :func:`_cell_call`'s
    per-tier policy, so a pool worker reconstructs the exact policy the
    serial scheduler would have used."""
    kwargs = dict(
        timeout_per_trial=config.timeout_per_trial,
        max_retries=config.max_retries,
        backoff_base=config.backoff_base,
        failure_budget=budget_remaining,
        processes=config.processes,
    )
    if tier == "single+serial":
        kwargs["processes"] = 1
    elif tier.startswith("single+processes"):
        kwargs["processes"] = config.processes or 2
    return kwargs


def _cell_task(
    exp_id: str,
    profile: str,
    overrides: dict,
    policy_kwargs: dict,
    store_prefix: str | None,
) -> tuple[object, float, list[FailureEvent]]:
    """Run one experiment cell inside a pool worker.

    Module-level and argument-picklable by construction (the pool forked
    before any cell existed).  Mirrors :func:`_cell_call`: the cell runs
    under its own durable policy and reports ``(table, elapsed_s,
    failure_events)`` so the parent charges trial-level failures to the
    campaign budget.  With a store prefix, the shared-memory graph plane
    is active for the whole cell, so graph builds route through the
    campaign-wide memo.
    """
    import contextlib

    ctx = contextlib.nullcontext()
    if store_prefix is not None:
        from repro.util import shm

        ctx = shm.use_graph_store(shm.store_for(store_prefix))
    policy = DurablePolicy(**policy_kwargs)
    cell_budget = policy.new_budget()
    start = time.perf_counter()
    with ctx, use_policy(policy, cell_budget):
        table = run_experiment(exp_id, profile, **overrides)
    return table, time.perf_counter() - start, cell_budget.events


@dataclass
class _PendingCell:
    """Scheduler state for one not-yet-finished cell."""

    exp_id: str
    path: Path
    tiers: list[tuple[str, dict]]
    tier_idx: int = 0
    attempt: int = 0  # retries used at the current tier
    attempts_total: int = 0
    last_error: str | None = None

    @property
    def current_tier(self) -> tuple[str, dict]:
        return self.tiers[self.tier_idx]


def _complete_cell(
    config: CampaignConfig,
    cell: _PendingCell,
    tier: str,
    table: object,
    elapsed: float,
    progress: Callable[[str], None],
) -> CellResult:
    """Verify + checkpoint one finished cell (identical artifact to the
    serial scheduler's, so resume and rendering stay bit-compatible)."""
    result = CellResult(
        exp_id=cell.exp_id,
        status="completed",
        elapsed_s=elapsed,
        attempts=cell.attempts_total,
        tier=tier,
        path=cell.path,
    )
    if config.verify and cell.exp_id in VERIFIERS:
        checks = verify_experiment(cell.exp_id, table)
        result.checks_passed = sum(1 for c in checks if c.passed)
        result.checks_total = len(checks)
    save_table(
        table,
        cell.path,
        exp_id=cell.exp_id,
        profile=config.profile,
        extra={
            "campaign": {
                "elapsed_s": elapsed,
                "tier": tier,
                "attempts": result.attempts,
                "checks_passed": result.checks_passed,
                "checks_total": result.checks_total,
            }
        },
    )
    verdict = (
        ""
        if result.checks_total is None
        else f", checks {result.checks_passed}/{result.checks_total}"
    )
    progress(f"{cell.exp_id}: completed in {elapsed:.1f}s [{tier}]{verdict}")
    return result


def _run_campaign_pooled(
    config: CampaignConfig,
    progress: Callable[[str], None],
) -> CampaignReport:
    """The parallel execution plane: all runnable cells flattened onto one
    persistent worker pool.

    Scheduling is wave-based work stealing: every still-pending cell
    contributes one unit (its current ladder tier) to the wave, the pool
    hands units to whichever worker frees up first, and failed cells
    advance their retry/tier state for the next wave — so a slow cell
    never blocks the rest of the registry, and uneven cells no longer
    serialize the tail.  Checkpoints are written only by this parent
    process, one atomic file per finished cell, exactly as in the serial
    scheduler; trial seeds are derived inside each cell from its
    experiment id and profile, so tables are bit-identical to a serial
    run.
    """
    from repro.harness.pool import PoolUnit, WorkerPool

    directory = Path(config.checkpoint_dir)
    directory.mkdir(parents=True, exist_ok=True)
    order = registry_order(config.exp_ids)
    policy = config.policy()
    budget = policy.new_budget()
    report = CampaignReport(profile=config.profile, checkpoint_dir=directory)
    results_by_id: dict[str, CellResult] = {}

    pending: list[_PendingCell] = []
    for exp_id in order:
        path = checkpoint_path(directory, exp_id, config.profile)
        resumed = _try_resume(config, exp_id, path, progress)
        if resumed is not None:
            results_by_id[exp_id] = resumed
            continue
        pending.append(
            _PendingCell(exp_id=exp_id, path=path, tiers=_cell_tiers(config, exp_id))
        )

    store = None
    if config.shared_graphs:
        from repro.util import shm

        if shm.shared_memory_supported():
            store = shm.SharedGraphStore.create()
    pool = WorkerPool(config.pool_workers)
    progress(
        f"parallel plane: {pool.size} worker(s)"
        + (", shared graphs" if store is not None else "")
    )
    try:
        while pending:
            units: list[PoolUnit] = []
            wave: list[tuple[_PendingCell, str]] = []
            for cell in pending:
                tier, tier_overrides = cell.current_tier
                overrides = dict(config.overrides.get(cell.exp_id, {}))
                overrides.update(tier_overrides)
                units.append(
                    PoolUnit(
                        name=f"cell {cell.exp_id} [{tier}]",
                        fn=_cell_task,
                        args=(
                            cell.exp_id,
                            config.profile,
                            overrides,
                            _cell_policy_kwargs(config, tier, budget.remaining),
                            None if store is None else store.prefix,
                        ),
                        timeout=config.timeout_per_experiment,
                    )
                )
                wave.append((cell, tier))
            results, failures = pool.run_units(units)
            next_pending: list[_PendingCell] = []
            retry_delay = 0.0
            for idx, (cell, tier) in enumerate(wave):
                cell.attempts_total += 1
                if idx in results:
                    table, elapsed, events = results[idx]
                    budget.absorb(events)
                    results_by_id[cell.exp_id] = _complete_cell(
                        config, cell, tier, table, elapsed, progress
                    )
                    continue
                exc = failures[idx]
                budget.spend(
                    FailureEvent(
                        kind=exc.kind, detail=exc.detail, tier=tier, unit=exc.unit
                    )
                )
                cell.last_error = str(exc)
                progress(
                    f"{cell.exp_id}: {tier} attempt {cell.attempt + 1} failed: {exc}"
                )
                if "FailureBudgetExceeded" in exc.detail:
                    raise FailureBudgetExceeded(exc.detail)
                if exc.degrade_now or cell.attempt >= config.max_retries:
                    cell.tier_idx += 1
                    cell.attempt = 0
                    if cell.tier_idx >= len(cell.tiers):
                        results_by_id[cell.exp_id] = CellResult(
                            exp_id=cell.exp_id,
                            status="failed",
                            attempts=cell.attempts_total,
                            error=cell.last_error,
                            path=cell.path,
                        )
                        progress(
                            f"{cell.exp_id}: FAILED after {cell.attempts_total} "
                            f"attempts: {cell.last_error}"
                        )
                        continue
                else:
                    cell.attempt += 1
                    retry_delay = max(
                        retry_delay, policy.backoff_delay(cell.attempt - 1)
                    )
                next_pending.append(cell)
            if next_pending and retry_delay > 0:
                policy.sleep(retry_delay)
            pending = next_pending
    except FailureBudgetExceeded as exc:
        report.aborted = str(exc)
        progress(f"campaign aborted: {exc}")
    finally:
        pool.shutdown()
        if store is not None:
            store.cleanup()
    for exp_id in order:
        if exp_id in results_by_id:
            report.cells.append(results_by_id[exp_id])
    report.failures = list(budget.events)
    return report


def _campaign_documents(
    directory: str | Path, profile: str, exp_ids: Sequence[str] | None = None
) -> list[ResultDocument]:
    order = registry_order(exp_ids)
    docs = []
    for exp_id in order:
        path = checkpoint_path(directory, exp_id, profile)
        if not path.exists():
            raise FileNotFoundError(
                f"campaign checkpoint missing for {exp_id} [{profile}]: {path} "
                "(run the campaign to completion first)"
            )
        docs.append(load_document(path))
    return docs


def render_campaign_text(
    directory: str | Path, profile: str, exp_ids: Sequence[str] | None = None
) -> str:
    """Rebuild the results-archive text purely from campaign checkpoints.

    Emits the exact ``standard_results.txt`` block format (claim header,
    rendered table, elapsed-seconds trailer) so a completed checkpoint
    directory regenerates the published archive byte-for-byte without
    re-running any experiment.
    """
    parts: list[str] = []
    for doc in _campaign_documents(directory, profile, exp_ids):
        claim = EXPERIMENTS[doc.exp_id].claim
        elapsed = float(doc.extra.get("campaign", {}).get("elapsed_s", 0.0))
        parts.append("")  # blank separator line before each block
        parts.append(f"### {doc.exp_id} — {claim}  [{profile}]")
        parts.append(doc.table.render())
        parts.append(f"(completed in {elapsed:.1f}s)")
    return "\n".join(parts) + "\n"
