"""Durable trial execution: timeouts, retries, backoff, degradation.

The paper's guarantees are w.h.p. statements, so every measured shape
comes from long multi-trial sweeps — which makes the *execution layer*
a single point of failure: one hung worker or one OOM-killed batch used
to lose the whole campaign.  This module wraps the runner's execution
strategies in the retry/timeout/checkpoint discipline distributed
harnesses treat as table stakes:

* **Wall-clock timeouts** — work units (trial chunks, replica batches,
  whole experiment cells) execute in forked child processes that the
  parent kills when they exceed their budget (``timeout_per_trial ×
  trials`` per unit), then re-dispatches with the *same trial seeds*.
* **Bounded retries with exponential backoff** — each failed unit is
  retried up to ``max_retries`` times, sleeping
  ``backoff_base · 2^attempt`` (capped) between waves; every failure
  spends from a per-campaign :class:`FailureBudget` so a systematically
  broken environment stops early instead of thrashing.
* **A graceful-degradation ladder** — on ``MemoryError`` (deterministic;
  retrying is pointless) or repeated worker death, execution falls to a
  cheaper tier: the batched engine splits its replica batch into
  sub-batches and finally singletons; the process-parallel runner falls
  from ``processes=K`` to serial.  Trial seeds are preserved at every
  tier, so the *same trials* run wherever they land.
* **Crash-safe trial checkpoints** — :class:`TrialCheckpointStore`
  persists completed outcome lists atomically (temp file +
  ``os.replace`` + fsync, content-hashed), so a SIGKILL'd sweep resumes
  from the last durable unit and quarantines corrupt files instead of
  silently reloading them.

Equivalence contract: the *faultless* durable path is bit-identical to
the plain runner (same seeds, same chunking-independent outcomes; a
forked child computes exactly what the parent would).  Degradation
tiers preserve trial seeds; for the per-trial runner every tier is
bit-identical, while splitting a replica *batch* changes the batch-wide
round randomness — statistically equivalent distributions over the same
trials (see ``tests/test_batched_cross_validation.py``).

Activate the policy for a whole call tree (e.g. one experiment cell)
with :func:`use_policy`; :func:`~repro.harness.runner.run_trials` and
:func:`~repro.harness.runner.run_trials_batched` detect it and route
through the durable executor automatically.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import json
import multiprocessing
import os
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "DurablePolicy",
    "FailureEvent",
    "FailureBudget",
    "FailureBudgetExceeded",
    "UnitFailure",
    "DurableExecutionError",
    "TrialCheckpointStore",
    "use_policy",
    "active_policy",
    "active_budget",
    "run_isolated",
    "run_trials_durable",
    "run_trials_batched_durable",
]


# ---------------------------------------------------------------------------
# Failures and budgets
# ---------------------------------------------------------------------------


class UnitFailure(RuntimeError):
    """One work unit failed: ``kind`` is ``timeout`` (killed past its
    wall-clock budget), ``crash`` (worker died without reporting), or
    ``error`` (worker raised; ``detail`` carries the exception text)."""

    def __init__(self, kind: str, detail: str, unit: str = "work"):
        self.kind = kind
        self.detail = detail
        self.unit = unit
        super().__init__(f"{unit} {kind}: {detail}")

    @property
    def degrade_now(self) -> bool:
        """Deterministic failures where retrying the same tier is pointless."""
        return self.kind == "error" and "MemoryError" in self.detail


class FailureBudgetExceeded(RuntimeError):
    """The campaign spent more failures than its budget allows."""


class DurableExecutionError(RuntimeError):
    """Every tier of the degradation ladder failed for one work unit."""


@dataclass(frozen=True)
class FailureEvent:
    """One recorded failure (for budget accounting and reports)."""

    kind: str  # "timeout" | "crash" | "error"
    detail: str
    tier: str
    unit: str


class FailureBudget:
    """Campaign-wide failure counter with a hard limit.

    Every timeout, worker death, or worker exception spends one unit;
    exceeding the limit raises :class:`FailureBudgetExceeded` so a
    systematically broken run stops early instead of burning hours of
    retries.
    """

    def __init__(self, limit: int):
        self.limit = int(limit)
        self.events: list[FailureEvent] = []

    @property
    def spent(self) -> int:
        return len(self.events)

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    def spend(self, event: FailureEvent) -> None:
        self.events.append(event)
        if self.spent > self.limit:
            raise FailureBudgetExceeded(
                f"failure budget exhausted: {self.spent} failures > limit "
                f"{self.limit} (last: {event.unit} {event.kind}: {event.detail})"
            )

    def absorb(self, events: Sequence[FailureEvent]) -> None:
        """Account failures reported back from an isolated child run."""
        for event in events:
            self.spend(event)


# ---------------------------------------------------------------------------
# Policy
# ---------------------------------------------------------------------------


@dataclass
class DurablePolicy:
    """Knobs for durable execution (shared by runner and campaign layers).

    Attributes
    ----------
    timeout_per_trial
        Wall-clock seconds allowed per trial; a work unit of ``t`` trials
        gets ``t × timeout_per_trial`` before its worker is killed.
        ``None`` disables timeouts (units then run in-process when
        serial — the cheap path).
    max_retries
        Additional attempts per work unit and tier after the first.
    backoff_base, backoff_cap
        Exponential backoff between attempts:
        ``min(cap, base · 2^attempt)`` seconds.
    failure_budget
        Total failures tolerated across the whole campaign.
    processes
        Worker fan-out for the process tier (``None`` reads
        ``REPRO_PROCESSES``, then falls back to serial).
    sleep
        Injectable sleep (tests replace it to avoid real delays).
    """

    timeout_per_trial: float | None = None
    max_retries: int = 2
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    failure_budget: int = 16
    processes: int | None = None
    sleep: Callable[[float], None] = time.sleep

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based): base · 2^attempt, capped."""
        return min(self.backoff_cap, self.backoff_base * (2.0**attempt))

    def new_budget(self) -> FailureBudget:
        return FailureBudget(self.failure_budget)

    def unit_timeout(self, trials: int) -> float | None:
        if self.timeout_per_trial is None:
            return None
        return self.timeout_per_trial * max(1, trials)


@dataclass(frozen=True)
class _ActiveContext:
    policy: DurablePolicy
    budget: FailureBudget


_ACTIVE: contextvars.ContextVar[_ActiveContext | None] = contextvars.ContextVar(
    "repro_durable_active", default=None
)


@contextlib.contextmanager
def use_policy(policy: DurablePolicy | None, budget: FailureBudget | None = None):
    """Route ``run_trials``/``run_trials_batched`` through the durable
    executor for the duration of the block (``None`` deactivates, which
    the executor itself uses to call the raw runner without recursing).
    """
    ctx = None
    if policy is not None:
        ctx = _ActiveContext(policy=policy, budget=budget or policy.new_budget())
    token = _ACTIVE.set(ctx)
    try:
        yield ctx
    finally:
        _ACTIVE.reset(token)


def active_policy() -> DurablePolicy | None:
    """Return the :class:`DurablePolicy` installed by :func:`use_policy`, if any."""
    ctx = _ACTIVE.get()
    return None if ctx is None else ctx.policy


def active_budget() -> FailureBudget | None:
    """Return the :class:`FailureBudget` installed by :func:`use_policy`, if any."""
    ctx = _ACTIVE.get()
    return None if ctx is None else ctx.budget


# ---------------------------------------------------------------------------
# Forked execution with kill-on-timeout
# ---------------------------------------------------------------------------


def _fork_context():
    methods = multiprocessing.get_all_start_methods()
    if "fork" not in methods:  # pragma: no cover - non-POSIX platforms
        return None
    return multiprocessing.get_context("fork")


def _child_main(conn, fn) -> None:
    """Child entry: run ``fn`` and report through the pipe, then hard-exit
    (``os._exit`` skips inherited atexit/teardown that belongs to the
    parent)."""
    code = 0
    try:
        conn.send(("ok", fn()))
    except BaseException as exc:  # noqa: BLE001 - report, then die
        code = 1
        try:
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
        except BaseException:
            pass
    finally:
        try:
            conn.close()
        except Exception:
            pass
        os._exit(code)


class _Child:
    """One forked worker executing a thunk with a wall-clock deadline."""

    def __init__(self, ctx, fn, timeout: float | None, unit: str):
        recv, send = ctx.Pipe(duplex=False)
        self.process = ctx.Process(target=_child_main, args=(send, fn))
        self.process.start()
        send.close()
        self.conn = recv
        self.unit = unit
        self.timeout = timeout
        self.deadline = None if timeout is None else time.monotonic() + timeout

    def poll(self, wait: float):
        """Returns ``("pending", None)``, ``("ok", value)``, or raises
        :class:`UnitFailure` on timeout/crash/error."""
        payload = None
        if self.conn.poll(wait):
            try:
                payload = self.conn.recv()
            except EOFError:
                payload = None
        elif self.deadline is not None and time.monotonic() >= self.deadline:
            self._terminate()
            raise UnitFailure(
                "timeout",
                f"exceeded {self.timeout:.1f}s wall clock; worker killed",
                self.unit,
            )
        elif self.process.is_alive():
            return "pending", None
        elif self.conn.poll(0):  # died between polls: drain the last message
            try:
                payload = self.conn.recv()
            except EOFError:
                payload = None
        self._finish()
        if payload is None:
            raise UnitFailure(
                "crash",
                f"worker died without reporting (exit code {self.process.exitcode})",
                self.unit,
            )
        status, value = payload
        if status == "err":
            raise UnitFailure("error", value, self.unit)
        return "ok", value

    def _terminate(self) -> None:
        if self.process.is_alive():
            self.process.kill()
        self._finish()

    def _finish(self) -> None:
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except Exception:
            pass


def run_isolated(fn: Callable[[], object], *, timeout: float | None = None, unit: str = "work"):
    """Run ``fn()`` in a forked child, killed if it exceeds ``timeout``.

    Fork (not spawn) so closures over engines/graphs need no pickling;
    only the *return value* crosses the pipe.  Raises
    :class:`UnitFailure` on timeout, worker death, or a worker-side
    exception.  Falls back to calling ``fn`` in-process on platforms
    without fork (no kill capability there).
    """
    ctx = _fork_context()
    if ctx is None:  # pragma: no cover - non-POSIX platforms
        return fn()
    child = _Child(ctx, fn, timeout, unit)
    try:
        while True:
            status, value = child.poll(0.05)
            if status == "ok":
                return value
    finally:
        child._terminate()


def _run_wave(
    units: dict[int, tuple[str, Callable[[], object], float | None]],
) -> tuple[dict[int, object], dict[int, UnitFailure]]:
    """Run a wave of units concurrently in forked children.

    ``units`` maps index -> (unit name, thunk, timeout).  Returns
    per-index results and failures; a failure in one unit never cancels
    the others (their results are kept for the retry wave).
    """
    ctx = _fork_context()
    results: dict[int, object] = {}
    failures: dict[int, UnitFailure] = {}
    if ctx is None:  # pragma: no cover - non-POSIX platforms
        for idx, (unit, fn, _timeout) in units.items():
            try:
                results[idx] = fn()
            except Exception as exc:  # noqa: BLE001
                failures[idx] = UnitFailure("error", f"{type(exc).__name__}: {exc}", unit)
        return results, failures
    running = {
        idx: _Child(ctx, fn, timeout, unit)
        for idx, (unit, fn, timeout) in units.items()
    }
    try:
        while running:
            for idx in list(running):
                child = running[idx]
                try:
                    status, value = child.poll(0.02)
                except UnitFailure as exc:
                    failures[idx] = exc
                    del running[idx]
                    continue
                if status == "ok":
                    results[idx] = value
                    del running[idx]
    finally:
        for child in running.values():
            child._terminate()
    return results, failures


def _active_worker_pool():
    """The campaign's persistent :class:`~repro.harness.pool.WorkerPool`,
    if one is active (lazy import: ``pool`` imports this module)."""
    from repro.harness.pool import active_pool

    return active_pool()


def _run_wave_pool(
    pool,
    units: dict[int, tuple[str, tuple, float | None]],
) -> tuple[dict[int, object], dict[int, UnitFailure]]:
    """Run a wave on the persistent pool instead of forking per unit.

    ``units`` maps index -> (unit name, picklable ``(fn, args)`` spec,
    timeout).  Same contract as :func:`_run_wave`: per-index results and
    failures, one failure never cancels siblings.  A timed-out or dead
    worker is SIGKILLed and replaced inside the pool; the retry wave
    re-dispatches the same spec — i.e. the original trial seeds.
    """
    from repro.harness.pool import PoolUnit

    order = list(units)
    pool_units = [
        PoolUnit(name=name, fn=spec[0], args=spec[1], timeout=timeout)
        for name, spec, timeout in (units[idx] for idx in order)
    ]
    raw_results, raw_failures = pool.run_units(pool_units)
    results = {order[i]: value for i, value in raw_results.items()}
    failures = {order[i]: exc for i, exc in raw_failures.items()}
    return results, failures


def _run_units_with_retry(
    units: list[tuple[str, Callable[[], object], int, tuple | None]],
    *,
    policy: DurablePolicy,
    budget: FailureBudget,
    tier: str,
) -> list[object]:
    """Run every unit (name, thunk, trial count, optional picklable
    ``(fn, args)`` spec), retrying failed ones in backoff-separated
    waves.  Waves run on the campaign's persistent worker pool when one
    is active and every unit carries a spec (closure-only units keep the
    fork-per-unit path).  Returns results in unit order; raises the
    last :class:`UnitFailure` if any unit is still failing after
    ``max_retries`` extra waves (deterministic ``MemoryError`` failures
    raise immediately so the ladder can degrade without useless
    retries)."""
    pool = _active_worker_pool()
    use_pool_waves = pool is not None and all(spec is not None for *_rest, spec in units)
    results: dict[int, object] = {}
    failures: dict[int, UnitFailure] = {}
    for attempt in range(policy.max_retries + 1):
        if use_pool_waves:
            todo = {
                idx: (unit, spec, policy.unit_timeout(trials))
                for idx, (unit, _fn, trials, spec) in enumerate(units)
                if idx not in results
            }
        else:
            todo = {
                idx: (unit, fn, policy.unit_timeout(trials))
                for idx, (unit, fn, trials, _spec) in enumerate(units)
                if idx not in results
            }
        if not todo:
            break
        if attempt:
            policy.sleep(policy.backoff_delay(attempt - 1))
        wave_results, failures = (
            _run_wave_pool(pool, todo) if use_pool_waves else _run_wave(todo)
        )
        results.update(wave_results)
        for failure in failures.values():
            budget.spend(
                FailureEvent(
                    kind=failure.kind, detail=failure.detail, tier=tier,
                    unit=failure.unit,
                )
            )
            if failure.degrade_now:
                raise failure
    if failures:
        raise next(iter(failures.values()))
    return [results[idx] for idx in range(len(units))]


# ---------------------------------------------------------------------------
# Durable runners (ladders over the raw execution strategies)
# ---------------------------------------------------------------------------


def _resolve(policy: DurablePolicy | None, budget: FailureBudget | None):
    policy = policy or active_policy() or DurablePolicy()
    budget = budget or active_budget() or policy.new_budget()
    return policy, budget


def run_trials_durable(
    build,
    *,
    trials: int,
    max_rounds: int,
    seed: int = 0,
    check_every: int = 1,
    processes: int | None = None,
    policy: DurablePolicy | None = None,
    budget: FailureBudget | None = None,
    checkpoint: "TrialCheckpointStore | None" = None,
    unit_id: str | None = None,
):
    """Durable counterpart of :func:`~repro.harness.runner.run_trials`.

    Same trial seeds, same outcomes (see the module equivalence
    contract), plus timeouts, retries, and the ``processes=K → serial``
    degradation rung.  With ``checkpoint``, a completed run is persisted
    and replayed on the next call instead of re-executed.
    """
    from repro.harness.runner import (
        _trial_chunk,
        default_processes,
        trial_seeds_for,
    )

    if trials < 1:
        raise ValueError("trials must be >= 1")
    policy, budget = _resolve(policy, budget)
    seeds = trial_seeds_for(seed, trials)
    unit_id = unit_id or f"trials-s{seed}-t{trials}-r{max_rounds}"
    if checkpoint is not None:
        cached = checkpoint.load(unit_id, seeds)
        if cached is not None:
            return cached

    k0 = processes or policy.processes or default_processes() or 1
    tiers = [min(k0, trials), 1] if k0 > 1 and trials > 1 else [1]
    last_failure: UnitFailure | None = None
    for k in dict.fromkeys(tiers):
        if k <= 1 and policy.timeout_per_trial is None:
            # Cheapest rung: in-process serial (no fork, no kill needed).
            outcomes = _trial_chunk(build, seeds, max_rounds, check_every)
        else:
            chunks = [list(c) for c in np.array_split(seeds, k)]
            # With a persistent pool active and a picklable builder, units
            # also carry a spec so waves dispatch to the pool instead of
            # forking; same chunking, same seeds, same outcomes.
            specs: list[tuple | None] = [None] * len(chunks)
            if _active_worker_pool() is not None:
                from repro.harness.runner import _probe_builder_picklable

                if _probe_builder_picklable(build)[0]:
                    specs = [
                        (_trial_chunk, (build, c, max_rounds, check_every))
                        for c in chunks
                    ]
            units = [
                (
                    f"trial chunk {i + 1}/{len(chunks)} ({len(c)} trials)",
                    (lambda cs: lambda: _trial_chunk(build, cs, max_rounds, check_every))(c),
                    len(c),
                    specs[i],
                )
                for i, c in enumerate(chunks)
            ]
            try:
                chunk_results = _run_units_with_retry(
                    units, policy=policy, budget=budget, tier=f"processes={k}"
                )
            except UnitFailure as exc:
                last_failure = exc
                continue  # degrade to the next rung with the same seeds
            outcomes = [o for chunk in chunk_results for o in chunk]
        if checkpoint is not None:
            checkpoint.save(unit_id, seeds, outcomes)
        return outcomes
    raise DurableExecutionError(
        f"all execution tiers failed for {unit_id}: {last_failure}"
    ) from last_failure


def run_trials_batched_durable(
    build_batched,
    *,
    trials: int,
    max_rounds: int,
    seed: int = 0,
    check_every: int = 1,
    activation_rounds=None,
    fault_plan=None,
    policy: DurablePolicy | None = None,
    budget: FailureBudget | None = None,
    checkpoint: "TrialCheckpointStore | None" = None,
    unit_id: str | None = None,
):
    """Durable counterpart of :func:`~repro.harness.runner.run_trials_batched`.

    Degradation ladder over the replica axis: the full ``T``-replica
    batch first; on kernel/``MemoryError`` or repeated worker death the
    batch splits into ``K`` sub-batches, then singletons — the same
    trial seeds throughout.  Tiers after the first restart the whole
    stage so every outcome in a returned list comes from one consistent
    batching (sub-batches draw batch-wide randomness per group, so
    degraded outcomes are statistically equivalent, not trace-identical,
    to the full batch; see the module docstring).
    """
    from repro.harness.runner import (
        _run_batched_for_seeds,
        default_processes,
        trial_seeds_for,
    )

    if trials < 1:
        raise ValueError("trials must be >= 1")
    policy, budget = _resolve(policy, budget)
    seeds = trial_seeds_for(seed, trials)
    unit_id = unit_id or f"batched-s{seed}-t{trials}-r{max_rounds}"
    if checkpoint is not None:
        cached = checkpoint.load(unit_id, seeds)
        if cached is not None:
            return cached

    k = policy.processes or default_processes() or 2
    stages: list[tuple[str, list[list[int]]]] = [("batched", [list(seeds)])]
    if trials > 1:
        split = [list(c) for c in np.array_split(seeds, min(k, trials))]
        if len(split) > 1:
            stages.append((f"batched/{len(split)} sub-batches", split))
        if len(split) != trials:
            stages.append(("batched/singletons", [[s] for s in seeds]))

    def batch_thunk(group: list[int]):
        def call():
            # Deactivate the policy inside the unit so the raw runner
            # executes directly instead of recursing into this ladder.
            with use_policy(None):
                return _run_batched_for_seeds(
                    build_batched,
                    group,
                    max_rounds=max_rounds,
                    check_every=check_every,
                    activation_rounds=activation_rounds,
                    fault_plan=fault_plan,
                )

        return call

    last_failure: UnitFailure | None = None
    for tier, groups in stages:
        if policy.timeout_per_trial is None and len(groups) == 1:
            try:
                outcomes = batch_thunk(groups[0])()
            except MemoryError as exc:
                budget.spend(
                    FailureEvent(
                        kind="error", detail=f"MemoryError: {exc}", tier=tier,
                        unit="full batch",
                    )
                )
                last_failure = UnitFailure("error", f"MemoryError: {exc}", "full batch")
                continue
        else:
            units = [
                (
                    f"replica batch {i + 1}/{len(groups)} ({len(g)} trials)",
                    batch_thunk(g),
                    len(g),
                    None,  # closures over build_batched: fork path only
                )
                for i, g in enumerate(groups)
            ]
            try:
                group_results = _run_units_with_retry(
                    units, policy=policy, budget=budget, tier=tier
                )
            except UnitFailure as exc:
                last_failure = exc
                continue
            outcomes = [o for group in group_results for o in group]
        if checkpoint is not None:
            checkpoint.save(unit_id, seeds, outcomes)
        return outcomes
    raise DurableExecutionError(
        f"all batched tiers failed for {unit_id}: {last_failure}"
    ) from last_failure


# ---------------------------------------------------------------------------
# Trial-level checkpoints
# ---------------------------------------------------------------------------


class TrialCheckpointStore:
    """Crash-safe per-unit :class:`~repro.harness.runner.TrialOutcome`
    checkpoints.

    One JSON file per work unit, written atomically with a content hash;
    a corrupt or mismatched file is quarantined (renamed aside) rather
    than reloaded, and the unit simply re-runs.
    """

    FORMAT_VERSION = 1

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)

    def path_for(self, unit_id: str) -> Path:
        safe = "".join(c if c.isalnum() or c in "-._" else "_" for c in unit_id)
        return self.directory / f"{safe}.json"

    @staticmethod
    def _hash(doc: dict) -> str:
        payload = {k: v for k, v in doc.items() if k != "content_sha256"}
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()

    def save(self, unit_id: str, seeds: Sequence[int], outcomes) -> Path:
        from repro.harness.persistence import atomic_write_text, encode_nonfinite

        doc = {
            "format_version": self.FORMAT_VERSION,
            "kind": "trial-outcomes",
            "unit_id": unit_id,
            "seeds": [int(s) for s in seeds],
            "outcomes": encode_nonfinite([asdict(o) for o in outcomes]),
        }
        doc["content_sha256"] = self._hash(doc)
        return atomic_write_text(
            self.path_for(unit_id),
            json.dumps(doc, indent=2, sort_keys=True, allow_nan=False) + "\n",
        )

    def load(self, unit_id: str, seeds: Sequence[int]):
        """Reload a unit's outcomes, or ``None`` (quarantining the file)
        when it is missing, corrupt, or describes different seeds."""
        from repro.harness.persistence import decode_nonfinite, quarantine_file
        from repro.harness.runner import TrialOutcome

        path = self.path_for(unit_id)
        if not path.exists():
            return None
        try:
            doc = json.loads(path.read_text())
            if (
                doc.get("format_version") != self.FORMAT_VERSION
                or doc.get("kind") != "trial-outcomes"
                or doc.get("content_sha256") != self._hash(doc)
                or doc.get("seeds") != [int(s) for s in seeds]
            ):
                quarantine_file(path)
                return None
            return [
                TrialOutcome(**row) for row in decode_nonfinite(doc["outcomes"])
            ]
        except (OSError, json.JSONDecodeError, TypeError, KeyError, ValueError):
            quarantine_file(path)
            return None
