"""The experiment registry: one experiment per paper claim.

The paper's evaluation is a sequence of theorems; every entry here
regenerates the *shape* of one claim (who wins, with what exponent, where
behaviour flattens), per the reproduction plan in DESIGN.md.  Each
experiment function returns a :class:`~repro.harness.tables.Table` whose
notes restate the paper claim being checked.

Two profiles are registered per experiment: ``quick`` (seconds; used by
the pytest benchmarks) and ``standard`` (minutes; used to fill
EXPERIMENTS.md).  Run them via :func:`run_experiment` or the
``examples/reproduce_paper.py`` driver.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

import numpy as np

from repro.algorithms.async_bit_convergence import AsyncBitConvergenceVectorized
from repro.algorithms.bit_convergence import (
    BitConvergenceBatched,
    BitConvergenceConfig,
    BitConvergenceVectorized,
    draw_id_tags,
)
from repro.algorithms.blind_gossip import BlindGossipBatched, BlindGossipVectorized
from repro.algorithms.ppush import PPushBatched, PPushVectorized
from repro.algorithms.push_pull import PushPullBatched, PushPullVectorized
from repro.analysis import bounds
from repro.analysis.expansion import vertex_expansion, vertex_expansion_exact
from repro.analysis.matching import gamma_exact
from repro.analysis.statistics import loglog_slope, summarize
from repro.core.classical import classical_push_pull_rumor
from repro.core.largen import LargeNEngine
from repro.core.payload import UIDSpace
from repro.core.vectorized import VectorizedEngine
from repro.faults import (
    ConnectionDropModel,
    FaultPlan,
    StateCorruptionEvent,
    random_crash_schedule,
)
from repro.graphs import families
from repro.graphs.dynamic import (
    DynamicGraph,
    PeriodicRelabelDynamicGraph,
    StaticDynamicGraph,
)
from repro.graphs.static import Graph
from repro.harness.runner import run_trials, run_trials_batched, trial_summary
from repro.harness.tables import Table
from repro.harness.tournament import (
    exp_tournament_blind_gossip,
    exp_tournament_ppush,
    exp_tournament_push_pull,
)
from repro.util.rng import make_rng

__all__ = [
    "Experiment",
    "EXPERIMENTS",
    "run_experiment",
    "registry_order",
    "uid_keys_random",
    "uid_keys_with_min_at",
]


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def uid_keys_random(n: int, seed: int | None) -> np.ndarray:
    """Distinct random UID keys (no vertex-index correlation)."""
    rng = make_rng(seed, "uid-keys")
    return rng.choice(np.arange(10 * n, dtype=np.int64), size=n, replace=False)


def uid_keys_with_min_at(n: int, vertex: int, seed: int | None) -> np.ndarray:
    """Distinct UID keys with the global minimum placed at ``vertex``.

    Used by the lower-bound construction (Section VI fixes the smallest
    UID at the first star's center).
    """
    keys = uid_keys_random(n, seed)
    amin = int(np.argmin(keys))
    keys[amin], keys[vertex] = keys[vertex], keys[amin]
    return keys


def _churn(base: Graph, tau: float, seed: int) -> DynamicGraph:
    """Static topology for ``τ = ∞``; isomorphic relabel churn otherwise."""
    if math.isinf(tau):
        return StaticDynamicGraph(base)
    return PeriodicRelabelDynamicGraph(base, int(tau), seed=seed)


def _churn_batched(
    base: Graph, tau: float, seeds: Sequence[int]
) -> DynamicGraph | list[DynamicGraph]:
    """Batched counterpart of :func:`_churn`.

    One shared static graph for ``τ = ∞``; otherwise one relabel
    generator per trial seed over the *shared base object*, which the
    batched engine recognizes and runs permutation-natively (no per-round
    graph construction or CSR stacking).
    """
    if math.isinf(tau):
        return StaticDynamicGraph(base)
    return [PeriodicRelabelDynamicGraph(base, int(tau), seed=int(ts)) for ts in seeds]


def _median_rounds(build, *, trials: int, max_rounds: int, seed: int) -> float:
    outcomes = run_trials(build, trials=trials, max_rounds=max_rounds, seed=seed)
    return trial_summary(outcomes).median


def _median_rounds_batched(
    build_batched, *, trials: int, max_rounds: int, seed: int, fault_plan=None
) -> float:
    outcomes = run_trials_batched(
        build_batched,
        trials=trials,
        max_rounds=max_rounds,
        seed=seed,
        fault_plan=fault_plan,
    )
    return trial_summary(outcomes).median


def _check_engine(engine: str) -> str:
    if engine not in ("single", "batched"):
        raise ValueError(f"engine must be 'single' or 'batched', got {engine!r}")
    return engine


# ---------------------------------------------------------------------------
# E1 — Lemma V.1: gamma >= alpha / 4
# ---------------------------------------------------------------------------


def exp_lemma_v1(*, n_small: int = 10, random_graphs: int = 6, seed: int = 0) -> Table:
    """Exact verification of Lemma V.1 on small graphs of every family."""
    table = Table(
        title="E1 (Lemma V.1): cut-matching ratio gamma vs vertex expansion alpha",
        columns=["graph", "n", "alpha", "gamma", "alpha/4", "gamma >= alpha/4"],
        notes=[
            "Paper claim: gamma = min_S nu(B(S))/|S| >= alpha/4 for every graph.",
            "alpha and gamma computed exactly by subset enumeration.",
        ],
    )
    cases: list[tuple[str, Graph]] = [
        ("clique", families.clique(n_small)),
        ("path", families.path(n_small)),
        ("ring", families.ring(n_small)),
        ("star", families.star(n_small)),
        ("double_star", families.double_star((n_small - 2) // 2)),
        ("binary_tree", families.binary_tree(n_small)),
        ("grid", families.grid(2, n_small // 2)),
        ("hypercube", families.hypercube(3)),
        ("line_of_stars", families.line_of_stars(3, 2)),
        ("barbell", families.barbell(4)),
    ]
    for i in range(random_graphs):
        cases.append(
            (f"gnp#{i}", families.connected_erdos_renyi(n_small, 0.4, seed=seed + i))
        )
    for name, g in cases:
        alpha = vertex_expansion_exact(g)
        gamma = gamma_exact(g)
        table.add_row(name, g.n, alpha, gamma, alpha / 4.0, gamma >= alpha / 4.0 - 1e-12)
    return table


# ---------------------------------------------------------------------------
# E2 — Theorem V.2: PPUSH productivity across a cut
# ---------------------------------------------------------------------------


def exp_ppush_matching(
    *, m: int = 128, d: int = 16, trials: int = 20, seed: int = 0
) -> Table:
    """PPUSH progress across a bipartite cut with a perfect matching.

    A random ``d``-regular bipartite graph on sides of size ``m`` has a
    matching of size ``m`` (König); the left side starts informed and we
    measure how many right-side nodes learn the rumor in ``r`` stable
    rounds, against the theorem's ``m/f(r)`` with ``f(r)=Δ^{1/r}·c·r·log n``.
    """
    table = Table(
        title="E2 (Thm V.2): PPUSH informs >= m/f(r) across a cut in r stable rounds",
        columns=[
            "r",
            "workload",
            "f(r) (c=1)",
            "predicted min fraction",
            "measured mean fraction",
            "measured q10 fraction",
            "measured >= predicted",
        ],
        notes=[
            "Paper claim: with constant probability at least m/f(r) new nodes "
            "are informed, f(r) = Delta^(1/r) * c * r * log n.",
            f"regular workload: random {d}-regular bipartite graph, "
            f"|L| = |R| = m = {m} (benign contention).",
            f"staircase workload: nested neighborhoods (left i ~ rights 0..i), "
            f"m = {m}, Delta = m — the contention structure behind the "
            "Delta^(1/r) factor; progress per r is visibly slower.",
        ],
    )
    n = 2 * m
    log_delta = int(math.log2(d))
    staircase = families.staircase_bipartite(m)

    def measure(r: int, build_graph) -> list[float]:
        fractions = []
        for t in range(trials):
            g = build_graph(t, r)
            algo = PPushVectorized(np.arange(m))
            engine = VectorizedEngine(
                StaticDynamicGraph(g), algo, seed=seed + 31 * t + r
            )
            engine.run(r, check_every=r + 1)  # exactly r rounds, no early stop
            fractions.append((algo.informed_count(engine.state) - m) / m)
        return fractions

    for r in range(1, log_delta + 1):
        for workload, delta_w, build in (
            (
                "regular",
                d,
                lambda t, r: families.random_bipartite_regular(
                    m, d, seed=seed + 1000 * t + r
                ),
            ),
            ("staircase", m, lambda t, r: staircase),
        ):
            fractions = measure(r, build)
            f_r = bounds.f_approx(r, delta_w, n, c=1.0)
            pred = 1.0 / f_r
            s = summarize(fractions)
            table.add_row(
                r, workload, f_r, pred, s.mean, s.q10, s.q10 >= pred - 1e-12
            )
    return table


# ---------------------------------------------------------------------------
# E3 — Theorem VI.1: blind gossip upper bound shape
# ---------------------------------------------------------------------------


def exp_blind_gossip_scaling(
    *,
    leaf_counts: Sequence[int] = (4, 8, 16, 32),
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 400_000,
    engine: str = "single",
) -> Table:
    """Blind gossip rounds vs Δ on the double star, static and τ=1 churn.

    The double star isolates the ``Δ²`` bottleneck: the hub-to-hub edge
    connects with probability ``≈ 1/Δ²`` per round.

    ``engine="batched"`` runs all trials of each sweep point as one
    :class:`~repro.core.batched.BatchedVectorizedEngine` (statistically
    equivalent, much faster at small n).
    """
    _check_engine(engine)
    table = Table(
        title="E3 (Thm VI.1): blind gossip stabilization vs Delta (double star)",
        columns=["Delta", "n", "alpha", "rounds static", "rounds tau=1", "bound shape"],
        notes=[
            "Paper claim: O((1/alpha) * Delta^2 * log^2 n) rounds, even at tau=1.",
            "bound shape = (1/alpha)*Delta^2*log2(n)^2 (unnormalized constant).",
        ],
    )
    deltas, rounds_static = [], []
    for k in leaf_counts:
        base = families.double_star(k)
        n = base.n
        delta = base.max_degree
        alpha = families.star_expansion(n) if False else 1.0 / (n // 2)
        keys = uid_keys_random(n, seed + k)

        if engine == "batched":

            def build_static_b(seeds, base=base, keys=keys):
                return StaticDynamicGraph(base), BlindGossipBatched(keys)

            def build_churn_b(seeds, base=base, keys=keys):
                dgs = [
                    PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds
                ]
                return dgs, BlindGossipBatched(keys)

            med_static = _median_rounds_batched(
                build_static_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_churn = _median_rounds_batched(
                build_churn_b, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        else:

            def build_static(ts: int, base=base, keys=keys) -> VectorizedEngine:
                return VectorizedEngine(
                    StaticDynamicGraph(base), BlindGossipVectorized(keys), seed=ts
                )

            def build_churn(ts: int, base=base, keys=keys) -> VectorizedEngine:
                return VectorizedEngine(
                    PeriodicRelabelDynamicGraph(base, 1, seed=ts),
                    BlindGossipVectorized(keys),
                    seed=ts,
                )

            med_static = _median_rounds(
                build_static, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_churn = _median_rounds(
                build_churn, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        table.add_row(
            delta,
            n,
            alpha,
            med_static,
            med_churn,
            bounds.blind_gossip_upper(n, alpha, delta),
        )
        deltas.append(delta)
        rounds_static.append(med_static)
    slope, r2 = loglog_slope(deltas, rounds_static)
    table.notes.append(
        f"log-log slope of static rounds vs Delta: {slope:.2f} (R^2={r2:.3f}); "
        "paper shape predicts ~2."
    )
    return table


# ---------------------------------------------------------------------------
# E4 — Section VI lower bound: line of stars
# ---------------------------------------------------------------------------


def exp_lower_bound_line_of_stars(
    *,
    star_sizes: Sequence[int] = (3, 4, 5, 6),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 600_000,
    engine: str = "single",
) -> Table:
    """Blind gossip on the line of stars with the minimum UID at ``u_1``.

    The construction with ``s`` stars of ``s`` points forces the minimum
    UID across ``s-1`` hub-to-hub edges, each crossed with probability
    ``≈ 1/Δ²`` — predicting ``Θ(Δ²·s) ⊆ Ω(Δ²/√α)`` rounds.
    """
    table = Table(
        title="E4 (Sec VI lower bound): blind gossip on the line of stars",
        columns=["s (stars)", "n", "Delta", "alpha", "rounds", "Delta^2*s", "ratio"],
        notes=[
            "Paper claim: blind gossip needs Omega(Delta^2 / sqrt(alpha)) rounds "
            "on this stable network (min UID at the first star center).",
            "ratio = measured / (Delta^2 * s); shape holds if roughly constant.",
        ],
    )
    _check_engine(engine)
    ss, measured = [], []
    for s in star_sizes:
        g = families.line_of_stars(s, s)
        n, delta = g.n, g.max_degree
        alpha = families.line_of_stars_expansion(s, s)
        keys = uid_keys_with_min_at(n, 0, seed + s)

        if engine == "batched":

            def build_b(seeds, g=g, keys=keys):
                return StaticDynamicGraph(g), BlindGossipBatched(keys)

            med = _median_rounds_batched(
                build_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
        else:

            def build(ts: int, g=g, keys=keys) -> VectorizedEngine:
                return VectorizedEngine(
                    StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=ts
                )

            med = _median_rounds(build, trials=trials, max_rounds=max_rounds, seed=seed)
        pred = delta * delta * s
        table.add_row(s, n, delta, alpha, med, pred, med / pred)
        ss.append(s)
        measured.append(med)
    slope, r2 = loglog_slope(ss, measured)
    table.notes.append(
        f"log-log slope of rounds vs s: {slope:.2f} (R^2={r2:.3f}); "
        "prediction Delta^2*s with Delta ~ s gives ~3."
    )
    return table


# ---------------------------------------------------------------------------
# E5 — Corollary VI.6: PUSH-PULL rumor spreading at b = 0
# ---------------------------------------------------------------------------


def exp_push_pull(
    *,
    leaf_counts: Sequence[int] = (4, 8, 16, 32),
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 400_000,
    engine: str = "single",
) -> Table:
    """PUSH-PULL completion vs Δ on the double star (source at a hub-1 leaf)."""
    _check_engine(engine)
    table = Table(
        title="E5 (Cor VI.6): b=0 PUSH-PULL rumor spreading vs Delta (double star)",
        columns=["Delta", "n", "rounds static", "rounds tau=1", "bound shape"],
        notes=[
            "Paper claim: PUSH-PULL completes in O((1/alpha)*Delta^2*log^2 n) "
            "rounds at b=0, any tau >= 1 (Corollary VI.6).",
        ],
    )
    deltas, measured = [], []
    for k in leaf_counts:
        base = families.double_star(k)
        n, delta = base.n, base.max_degree
        alpha = 1.0 / (n // 2)
        source = np.array([2])  # first leaf of hub 0: rumor must cross both hubs

        if engine == "batched":

            def build_static_b(seeds, base=base, source=source):
                return StaticDynamicGraph(base), PushPullBatched(source)

            def build_churn_b(seeds, base=base, source=source):
                dgs = [
                    PeriodicRelabelDynamicGraph(base, 1, seed=int(ts)) for ts in seeds
                ]
                return dgs, PushPullBatched(source)

            med_static = _median_rounds_batched(
                build_static_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_churn = _median_rounds_batched(
                build_churn_b, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        else:

            def build_static(ts: int, base=base, source=source) -> VectorizedEngine:
                return VectorizedEngine(
                    StaticDynamicGraph(base), PushPullVectorized(source), seed=ts
                )

            def build_churn(ts: int, base=base, source=source) -> VectorizedEngine:
                return VectorizedEngine(
                    PeriodicRelabelDynamicGraph(base, 1, seed=ts),
                    PushPullVectorized(source),
                    seed=ts,
                )

            med_static = _median_rounds(
                build_static, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_churn = _median_rounds(
                build_churn, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        table.add_row(
            delta, n, med_static, med_churn, bounds.push_pull_upper(n, alpha, delta)
        )
        deltas.append(delta)
        measured.append(med_static)
    slope, r2 = loglog_slope(deltas, measured)
    table.notes.append(
        f"log-log slope of static rounds vs Delta: {slope:.2f} (R^2={r2:.3f}); "
        "paper shape predicts ~2."
    )
    return table


# ---------------------------------------------------------------------------
# E6 — Theorem VII.2: bit convergence vs tau
# ---------------------------------------------------------------------------


def exp_bit_convergence_tau(
    *,
    n: int = 64,
    degree: int = 8,
    taus: Sequence[float] = (1, 2, 4, 8, 16, math.inf),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 400_000,
    beta: float = 1.0,
    engine: str = "single",
) -> Table:
    """Bit convergence stabilization vs the stability factor τ.

    Theorem VII.2 predicts rounds shrinking as ``Δ^{1/τ̂}·τ̂`` with
    ``τ̂ = min(τ, log Δ)`` — monotone improvement flattening once
    ``τ ≥ log Δ``.  Two churn models per τ:

    * *oblivious*: isomorphic relabeling of a ``degree``-regular base
      every τ rounds — honours the contract but mixes state, so it barely
      exercises the bound's τ term (kept as the honest null result);
    * *adaptive*: :class:`~repro.graphs.adversary.PackingAdversary` on a
      double star with ``Δ ≈ degree`` — repacks winners behind a unit cut
      matching at every epoch boundary, so longer stability directly buys
      more PPUSH progress per epoch; this is where the τ-dependence shows.

    ``engine="batched"`` runs each (τ, churn-model) cell as one batched
    engine: the oblivious arm through the permutation-native relabel fast
    path, the adaptive arm through a single
    :class:`~repro.graphs.adversary.BatchedPackingAdversary` reacting to
    the whole ``(T, n)`` observation at once.
    """
    from repro.graphs.adversary import BatchedPackingAdversary, PackingAdversary

    _check_engine(engine)

    base = families.random_regular(n, degree, seed=seed)
    star_base = families.double_star(max(2, degree - 1))
    delta = base.max_degree
    alpha = vertex_expansion(base, seed=seed)
    config = BitConvergenceConfig(n_upper=n, delta_bound=delta, beta=beta)
    star_config = BitConvergenceConfig(
        n_upper=star_base.n, delta_bound=star_base.max_degree, beta=beta
    )
    keys = uid_keys_random(n, seed)
    star_keys = uid_keys_random(star_base.n, seed + 1)
    table = Table(
        title="E6 (Thm VII.2): bit convergence rounds vs stability factor tau",
        columns=["tau", "tau_hat", "oblivious churn", "adaptive churn", "bound shape"],
        notes=[
            "Paper claim: O((1/alpha)*Delta^(1/tau_hat)*tau_hat*log^5 n) rounds, "
            "tau_hat = min(tau, log Delta); improvement flattens past log Delta.",
            f"Oblivious workload: {degree}-regular graph on n={n} "
            f"(alpha~{alpha:.2f}), relabeling churn every tau rounds — random "
            "relabeling mixes state, so the tau term barely registers "
            "(honest null result).",
            f"Adaptive workload: double star (n={star_base.n}, "
            f"Delta={star_base.max_degree}) with the packing adversary "
            "repacking winners each epoch; any finite tau costs a clear "
            "factor over tau=inf.",
            "The adaptive column is flat across finite tau because the "
            "packing pins the cut matching to 1, capping progress per round "
            "regardless of epoch length; the bound's finer Delta^(1/tau_hat) "
            "gradation prices contention-heavy cuts that neither churn model "
            "constructs.",
        ],
    )
    for tau in taus:
        if engine == "batched":

            def build_obliv_b(seeds, tau=tau):
                return (
                    _churn_batched(base, tau, seeds),
                    BitConvergenceBatched(keys, config, unique_tags=True),
                )

            def build_adaptive_b(seeds, tau=tau):
                if math.isinf(tau):
                    dg = StaticDynamicGraph(star_base)
                else:
                    dg = BatchedPackingAdversary(
                        star_base, tau=int(tau), replicas=len(seeds)
                    )
                return dg, BitConvergenceBatched(
                    star_keys, star_config, unique_tags=True
                )

            med_obliv = _median_rounds_batched(
                build_obliv_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_adapt = _median_rounds_batched(
                build_adaptive_b, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        else:

            def build_obliv(ts: int, tau=tau) -> VectorizedEngine:
                return VectorizedEngine(
                    _churn(base, tau, ts),
                    BitConvergenceVectorized(
                        keys, config, tag_seed=ts, unique_tags=True
                    ),
                    seed=ts,
                )

            def build_adaptive(ts: int, tau=tau) -> VectorizedEngine:
                if math.isinf(tau):
                    dg = StaticDynamicGraph(star_base)
                else:
                    dg = PackingAdversary(star_base, tau=int(tau))
                return VectorizedEngine(
                    dg,
                    BitConvergenceVectorized(
                        star_keys, star_config, tag_seed=ts, unique_tags=True
                    ),
                    seed=ts,
                )

            med_obliv = _median_rounds(
                build_obliv, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_adapt = _median_rounds(
                build_adaptive, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        table.add_row(
            "inf" if math.isinf(tau) else int(tau),
            bounds.tau_hat(tau if not math.isinf(tau) else delta, delta),
            med_obliv,
            med_adapt,
            bounds.bit_convergence_upper(n, alpha, delta, tau if not math.isinf(tau) else delta),
        )
    return table


# ---------------------------------------------------------------------------
# E7 — the b = 0 vs b = 1 gap
# ---------------------------------------------------------------------------


def exp_gap_b0_b1(
    *,
    leaves: int = 16,
    taus: Sequence[float] = (1, 2, 4, math.inf),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 600_000,
    beta: float = 1.0,
    engine: str = "single",
) -> Table:
    """Blind gossip vs bit convergence head-to-head on the double star.

    The paper's headline gap: as τ grows from 1 to ``log Δ``, the advantage
    of the 1-bit algorithm grows from ``~Δ`` to ``~Δ²`` (log factors aside).
    """
    _check_engine(engine)
    base = families.double_star(leaves)
    n, delta = base.n, base.max_degree
    config = BitConvergenceConfig(n_upper=n, delta_bound=delta, beta=beta)
    keys = uid_keys_random(n, seed)
    table = Table(
        title="E7 (Sec VII): b=0 vs b=1 leader election gap vs tau (double star)",
        columns=["tau", "blind gossip (b=0)", "bit convergence (b=1)", "speedup"],
        notes=[
            "Paper claim: the b=1 advantage grows from ~Delta to ~Delta^2 as "
            "tau goes from 1 to log Delta (ignoring log factors).",
            "At simulatable scale the polylog factors of bit convergence are "
            "comparable to Delta, so the reproducible shape is the *trend*: "
            "the speedup grows with tau and with Delta.",
            f"Workload: double star, Delta={delta}, n={n}.",
        ],
    )
    for tau in taus:
        if engine == "batched":

            def build_bg_b(seeds, tau=tau):
                return _churn_batched(base, tau, seeds), BlindGossipBatched(keys)

            def build_bc_b(seeds, tau=tau):
                return (
                    _churn_batched(base, tau, seeds),
                    BitConvergenceBatched(keys, config, unique_tags=True),
                )

            bg = _median_rounds_batched(
                build_bg_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
            bc = _median_rounds_batched(
                build_bc_b, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        else:

            def build_bg(ts: int, tau=tau) -> VectorizedEngine:
                return VectorizedEngine(
                    _churn(base, tau, ts), BlindGossipVectorized(keys), seed=ts
                )

            def build_bc(ts: int, tau=tau) -> VectorizedEngine:
                return VectorizedEngine(
                    _churn(base, tau, ts),
                    BitConvergenceVectorized(
                        keys, config, tag_seed=ts, unique_tags=True
                    ),
                    seed=ts,
                )

            bg = _median_rounds(
                build_bg, trials=trials, max_rounds=max_rounds, seed=seed
            )
            bc = _median_rounds(
                build_bc, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
        table.add_row("inf" if math.isinf(tau) else int(tau), bg, bc, bg / bc)
    return table


# ---------------------------------------------------------------------------
# E8 — Theorem VIII.2: asynchronous activations
# ---------------------------------------------------------------------------


def exp_async(
    *,
    n: int = 32,
    degree: int = 4,
    trials: int = 6,
    seed: int = 0,
    max_rounds: int = 400_000,
    beta: float = 1.0,
) -> Table:
    """Async bit convergence vs the synchronized original.

    Three variants on the same static random-regular topology:
    synchronized bit convergence, async algorithm with simultaneous
    starts, and async algorithm with staggered activations (measured from
    the last activation, as Theorem VIII.2 prescribes).
    """
    base = families.random_regular(n, degree, seed=seed)
    delta = base.max_degree
    config = BitConvergenceConfig(n_upper=n, delta_bound=delta, beta=beta)
    keys = uid_keys_random(n, seed)
    spread = 4 * config.group_len

    def build_sync(ts: int) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(base),
            BitConvergenceVectorized(keys, config, tag_seed=ts, unique_tags=True),
            seed=ts,
        )

    def build_async_simul(ts: int) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(base),
            AsyncBitConvergenceVectorized(keys, config, tag_seed=ts, unique_tags=True),
            seed=ts,
        )

    def build_async_staggered(ts: int) -> VectorizedEngine:
        act = make_rng(ts, "activations").integers(1, spread + 1, size=n)
        act[int(np.argmin(act))] = 1  # someone starts at round 1
        return VectorizedEngine(
            StaticDynamicGraph(base),
            AsyncBitConvergenceVectorized(keys, config, tag_seed=ts, unique_tags=True),
            seed=ts,
            activation_rounds=act,
        )

    table = Table(
        title="E8 (Thm VIII.2): async bit convergence vs synchronized original",
        columns=["variant", "b (tag bits)", "rounds", "ratio to sync"],
        notes=[
            "Paper claim: the async variant stabilizes within polylog factors "
            "of the original, measured after the last activation, and needs "
            "b = ceil(log k)+1 = loglog n + O(1) advertising bits.",
            f"Workload: static {degree}-regular graph on n={n}; "
            f"staggered activations spread over {spread} rounds.",
        ],
    )
    sync_out = run_trials(build_sync, trials=trials, max_rounds=max_rounds, seed=seed)
    sync_med = trial_summary(sync_out).median
    table.add_row("bit convergence (sync)", 1, sync_med, 1.0)

    simul_out = run_trials(
        build_async_simul, trials=trials, max_rounds=max_rounds, seed=seed + 1
    )
    simul_med = trial_summary(simul_out).median
    table.add_row("async, simultaneous starts", config_tag_bits(config), simul_med, simul_med / sync_med)

    stag_out = run_trials(
        build_async_staggered, trials=trials, max_rounds=max_rounds, seed=seed + 2
    )
    stag_med = trial_summary(stag_out, after_activation=True).median
    table.add_row(
        "async, staggered (after last act.)",
        config_tag_bits(config),
        stag_med,
        stag_med / sync_med,
    )
    return table


def config_tag_bits(config: BitConvergenceConfig) -> int:
    """Advertising bits the async variant needs for this configuration."""
    from repro.algorithms.async_bit_convergence import async_tag_length

    return async_tag_length(config.k)


# ---------------------------------------------------------------------------
# E9 — self-stabilization: joining long-running components
# ---------------------------------------------------------------------------


def exp_self_stabilization(
    *,
    component_n: int = 16,
    degree: int = 4,
    trials: int = 6,
    seed: int = 0,
    max_rounds: int = 400_000,
    beta: float = 1.0,
) -> Table:
    """Join two converged components and measure re-stabilization.

    Each component runs async bit convergence to convergence in isolation;
    the components are then bridged and the combined network continues
    from its existing state.  Section VIII claims the combined network
    stabilizes in the same time as a fresh network of the combined size.
    """
    n_total = 2 * component_n
    config = BitConvergenceConfig(n_upper=n_total, delta_bound=degree + 1, beta=beta)
    joined_rounds, fresh_rounds = [], []
    for t in range(trials):
        ts = seed + 101 * t
        g1 = families.random_regular(component_n, degree, seed=ts)
        g2 = families.random_regular(component_n, degree, seed=ts + 1)
        union = g1.union(g2, [(0, 0), (component_n - 1, component_n - 1)])
        keys = uid_keys_random(n_total, ts)
        # Tags are drawn uniquely across the *whole* eventual network: the
        # paper's uniqueness event covers all nodes that will ever meet (a
        # cross-component collision at the minimum tag would deadlock the
        # bit advertising, exactly as in the single-network case).
        all_tags = draw_id_tags(n_total, config, ts + 5, unique=True)

        # Run each component to convergence in isolation.
        states = []
        for comp, g, key_slice in (
            (0, g1, slice(0, component_n)),
            (1, g2, slice(component_n, n_total)),
        ):
            algo = AsyncBitConvergenceVectorized(
                keys[key_slice],
                config,
                initial_pairs=(all_tags[key_slice], keys[key_slice]),
            )
            eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=ts + 13 * comp)
            res = eng.run(max_rounds)
            if not res.stabilized:
                raise RuntimeError("component failed to stabilize; raise max_rounds")
            states.append((eng.state.ctag.copy(), eng.state.ckey.copy()))

        # Join: continue from the components' converged states.
        init_tags = np.concatenate([states[0][0], states[1][0]])
        init_keys = np.concatenate([states[0][1], states[1][1]])
        algo_joined = AsyncBitConvergenceVectorized(
            keys, config, initial_pairs=(init_tags, init_keys)
        )
        eng_joined = VectorizedEngine(
            StaticDynamicGraph(union), algo_joined, seed=ts + 29
        )
        res_joined = eng_joined.run(max_rounds)
        if not res_joined.stabilized:
            raise RuntimeError("joined network failed to stabilize")
        joined_rounds.append(res_joined.rounds)

        # Baseline: a fresh start on the same union topology.
        algo_fresh = AsyncBitConvergenceVectorized(keys, config, tag_seed=ts + 31, unique_tags=True)
        eng_fresh = VectorizedEngine(StaticDynamicGraph(union), algo_fresh, seed=ts + 37)
        res_fresh = eng_fresh.run(max_rounds)
        if not res_fresh.stabilized:
            raise RuntimeError("fresh union failed to stabilize")
        fresh_rounds.append(res_fresh.rounds)

    s_join, s_fresh = summarize(joined_rounds), summarize(fresh_rounds)
    table = Table(
        title="E9 (Sec VIII): self-stabilization after joining converged components",
        columns=["scenario", "median rounds", "mean rounds"],
        notes=[
            "Paper claim: connecting components that ran for arbitrary durations "
            "still stabilizes to a single leader in the usual stabilization time.",
            f"Workload: two {degree}-regular components of n={component_n}, "
            "bridged by two edges.",
        ],
    )
    table.add_row("fresh start on union", s_fresh.median, s_fresh.mean)
    table.add_row("join after convergence", s_join.median, s_join.mean)
    table.notes.append(
        f"ratio join/fresh (median): {s_join.median / max(s_fresh.median, 1e-9):.2f} "
        "(same order expected)."
    )
    return table


# ---------------------------------------------------------------------------
# E10 — classical telephone model vs mobile telephone model
# ---------------------------------------------------------------------------


def exp_classical_vs_mobile(
    *,
    leaf_counts: Sequence[int] = (4, 8, 16, 32),
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 400_000,
) -> Table:
    """Rumor spreading: classical model vs mobile b=0 vs mobile b=1.

    The single-connection restriction is what costs ``Δ²``: classical
    PUSH-PULL and mobile PPUSH scale ``~Δ`` on the double star while
    mobile b=0 PUSH-PULL scales ``~Δ²``.
    """
    table = Table(
        title="E10: classical PUSH-PULL vs mobile b=0 PUSH-PULL vs PPUSH (b=1)",
        columns=["Delta", "n", "classical", "mobile b=0", "mobile b=1 (PPUSH)"],
        notes=[
            "Paper context: classical model (unbounded accepts) and the b=1 "
            "mobile model spread rumors in O((1/alpha)*polylog n) on stable "
            "graphs; the b=0 mobile model provably cannot (Sec VI).",
        ],
    )
    deltas, mob0 = [], []
    for k in leaf_counts:
        base = families.double_star(k)
        n, delta = base.n, base.max_degree
        source = np.array([2])

        def build_b0(ts: int, base=base, source=source) -> VectorizedEngine:
            return VectorizedEngine(
                StaticDynamicGraph(base), PushPullVectorized(source), seed=ts
            )

        def build_b1(ts: int, base=base, source=source) -> VectorizedEngine:
            return VectorizedEngine(
                StaticDynamicGraph(base), PPushVectorized(source), seed=ts
            )

        classical = [
            classical_push_pull_rumor(
                StaticDynamicGraph(base), 2, max_rounds=max_rounds, seed=seed + 17 * t
            ).rounds
            for t in range(trials)
        ]
        med_cl = float(np.median(classical))
        med_b0 = _median_rounds(build_b0, trials=trials, max_rounds=max_rounds, seed=seed)
        med_b1 = _median_rounds(build_b1, trials=trials, max_rounds=max_rounds, seed=seed + 1)
        table.add_row(delta, n, med_cl, med_b0, med_b1)
        deltas.append(delta)
        mob0.append(med_b0)
    slope, _ = loglog_slope(deltas, mob0)
    table.notes.append(
        f"mobile b=0 log-log slope vs Delta: {slope:.2f} (expected ~2); "
        "classical and PPUSH grow ~linearly in Delta here."
    )
    return table


# ---------------------------------------------------------------------------
# E11 — worst-case expansion vs well-connected, tau = 1
# ---------------------------------------------------------------------------


def exp_dynamic_comparison(
    *,
    sizes: Sequence[int] = (16, 32, 64),
    degree: int = 4,
    trials: int = 6,
    seed: int = 0,
    max_rounds: int = 600_000,
    beta: float = 1.0,
    engine: str = "single",
) -> Table:
    """Bit convergence: ring (α ~ 1/n) vs random regular (α ~ const).

    Paper context (related work): versus Kuhn-Lynch-Oshman's O(n²) dynamic
    leader election, bit convergence costs O(n·Δ·polylog n) at worst-case
    expansion but drops toward polylog on well-connected graphs — the 1/α
    term, not n itself, drives the cost.

    Static columns isolate the 1/α effect.  The τ=1 columns use random
    isomorphic relabeling, which *destroys locality*: a relabeled ring is
    effectively a fresh random 2-regular graph each round, i.e. a temporal
    expander.  The per-round α is still 2/n, but the measured rounds
    collapse — direct evidence that the bound's per-snapshot α is a
    worst-case (adversarial-schedule) parameter that oblivious random
    churn does not realize.
    """
    table = Table(
        title="E11: bit convergence, poorly vs well connected (static and tau=1)",
        columns=[
            "n",
            "ring static",
            "regular static",
            "static ratio",
            "ring tau=1",
            "regular tau=1",
        ],
        notes=[
            "Paper claim: the (1/alpha) term dominates; well-connected graphs "
            "elect leaders near-polylogarithmically.",
            "static ratio = ring/regular, expected to grow ~n/polylog as the "
            "ring's 1/alpha = n/2 kicks in.",
            "tau=1 uses random relabeling churn: it mixes the ring into a "
            "temporal expander, so the 1/alpha penalty disappears — the "
            "bound's per-round alpha is adversarial worst case.",
        ],
    )
    _check_engine(engine)
    for n in sizes:
        ring = families.ring(n)
        reg = families.random_regular(n, degree, seed=seed + n)
        keys = uid_keys_random(n, seed + n)
        cfg_ring = BitConvergenceConfig(n_upper=n, delta_bound=2, beta=beta)
        cfg_reg = BitConvergenceConfig(n_upper=n, delta_bound=degree, beta=beta)

        from functools import partial

        if engine == "batched":

            def build_b(seeds, *, base, cfg, tau):
                return (
                    _churn_batched(base, tau, seeds),
                    BitConvergenceBatched(keys, cfg, unique_tags=True),
                )

            cell = partial(
                _median_rounds_batched, trials=trials, max_rounds=max_rounds
            )
            ring_static = cell(
                partial(build_b, base=ring, cfg=cfg_ring, tau=math.inf), seed=seed
            )
            reg_static = cell(
                partial(build_b, base=reg, cfg=cfg_reg, tau=math.inf), seed=seed + 1
            )
            ring_churn = cell(
                partial(build_b, base=ring, cfg=cfg_ring, tau=1), seed=seed + 2
            )
            reg_churn = cell(
                partial(build_b, base=reg, cfg=cfg_reg, tau=1), seed=seed + 3
            )
        else:

            def build(ts: int, *, base, cfg, tau) -> VectorizedEngine:
                return VectorizedEngine(
                    _churn(base, tau, ts),
                    BitConvergenceVectorized(keys, cfg, tag_seed=ts, unique_tags=True),
                    seed=ts,
                )

            cell = partial(_median_rounds, trials=trials, max_rounds=max_rounds)
            ring_static = cell(
                partial(build, base=ring, cfg=cfg_ring, tau=math.inf), seed=seed
            )
            reg_static = cell(
                partial(build, base=reg, cfg=cfg_reg, tau=math.inf), seed=seed + 1
            )
            ring_churn = cell(
                partial(build, base=ring, cfg=cfg_ring, tau=1), seed=seed + 2
            )
            reg_churn = cell(
                partial(build, base=reg, cfg=cfg_reg, tau=1), seed=seed + 3
            )
        table.add_row(
            n, ring_static, reg_static, ring_static / reg_static, ring_churn, reg_churn
        )
    return table


# ---------------------------------------------------------------------------
# E12 — adaptive vs oblivious churn (extension)
# ---------------------------------------------------------------------------


def exp_adaptive_adversary(
    *,
    leaf_counts: Sequence[int] = (8, 16, 32),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 600_000,
    engine: str = "single",
) -> Table:
    """PUSH-PULL under adaptive worst-case churn vs oblivious churn.

    The model allows an *adversarial* dynamic graph; the bounds' τ- and
    α-dependence prices that adversary.  Oblivious random relabeling mixes
    state and helps; the :class:`~repro.graphs.adversary.PackingAdversary`
    instead observes the informed set each epoch and relabels the double
    star so the informed nodes sit behind a single boundary vertex —
    pinning the cut matching ν(B(S)) to 1 and throttling spread to ~one
    node per round.  Expected ordering: oblivious ≤ static ≤ adaptive,
    with the adaptive column growing ~linearly in n on top.
    """
    from repro.graphs.adversary import BatchedPackingAdversary, PackingAdversary

    _check_engine(engine)
    table = Table(
        title="E12 (extension): b=0 PUSH-PULL — oblivious vs adaptive tau=1 churn",
        columns=["Delta", "n", "static", "oblivious tau=1", "adaptive tau=1"],
        notes=[
            "Model context: the dynamic graph is adversarial; the bounds "
            "price a worst case that oblivious random churn never realizes.",
            "Adaptive adversary: packs the informed set behind one boundary "
            "vertex every epoch (alpha and Delta preserved exactly).",
        ],
    )
    for k in leaf_counts:
        base = families.double_star(k)
        n, delta = base.n, base.max_degree
        source = np.array([2])

        if engine == "batched":

            def build_static_b(seeds, base=base):
                return StaticDynamicGraph(base), PushPullBatched(source)

            def build_obliv_b(seeds, base=base):
                return (
                    _churn_batched(base, 1, seeds),
                    PushPullBatched(source),
                )

            def build_adaptive_b(seeds, base=base):
                return (
                    BatchedPackingAdversary(base, tau=1, replicas=len(seeds)),
                    PushPullBatched(source),
                )

            med_static = _median_rounds_batched(
                build_static_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_obliv = _median_rounds_batched(
                build_obliv_b, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
            med_adapt = _median_rounds_batched(
                build_adaptive_b, trials=trials, max_rounds=max_rounds, seed=seed + 2
            )
        else:

            def build_static(ts: int, base=base) -> VectorizedEngine:
                return VectorizedEngine(
                    StaticDynamicGraph(base), PushPullVectorized(source), seed=ts
                )

            def build_obliv(ts: int, base=base) -> VectorizedEngine:
                return VectorizedEngine(
                    PeriodicRelabelDynamicGraph(base, 1, seed=ts),
                    PushPullVectorized(source),
                    seed=ts,
                )

            def build_adaptive(ts: int, base=base) -> VectorizedEngine:
                return VectorizedEngine(
                    PackingAdversary(base, tau=1), PushPullVectorized(source), seed=ts
                )

            med_static = _median_rounds(
                build_static, trials=trials, max_rounds=max_rounds, seed=seed
            )
            med_obliv = _median_rounds(
                build_obliv, trials=trials, max_rounds=max_rounds, seed=seed + 1
            )
            med_adapt = _median_rounds(
                build_adaptive, trials=trials, max_rounds=max_rounds, seed=seed + 2
            )
        table.add_row(delta, n, med_static, med_obliv, med_adapt)
    return table


# ---------------------------------------------------------------------------
# E14 — PPUSH matches the classical model within log factors (tau >= log Δ)
# ---------------------------------------------------------------------------


def exp_ppush_vs_classical(
    *,
    sizes: Sequence[int] = (32, 64, 128, 256),
    degree: int = 8,
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 200_000,
) -> Table:
    """PPUSH (b=1, single accept) vs classical PUSH-PULL (unbounded accepts).

    Related-work claim (carried from Ghaffari-Newport and used throughout
    this paper): for ``τ ≥ log Δ`` and with one advertising bit, PPUSH in
    the mobile telephone model *matches* classical PUSH-PULL within log
    factors — the one-connection restriction costs only polylog once a
    single bit of advertising focuses the proposals.  We sweep ``n`` on
    static regular graphs and check the ratio grows at most
    polylogarithmically (in particular, far slower than any polynomial).
    """
    table = Table(
        title="E14: PPUSH (mobile, b=1) vs classical PUSH-PULL, static regular graphs",
        columns=["n", "classical", "PPUSH (b=1)", "ratio", "log2(n)"],
        notes=[
            "Paper context: with b=1 and tau >= log Delta the mobile model "
            "matches the classical model within log factors.",
            f"Workload: static {degree}-regular graphs, rumor at vertex 0.",
        ],
    )
    ratios = []
    for n in sizes:
        g = families.random_regular(n, degree, seed=seed + n)
        dg = StaticDynamicGraph(g)
        classical = [
            classical_push_pull_rumor(dg, 0, max_rounds=max_rounds, seed=seed + 17 * t).rounds
            for t in range(trials)
        ]

        def build(ts: int, dg=dg) -> VectorizedEngine:
            return VectorizedEngine(dg, PPushVectorized(np.array([0])), seed=ts)

        med_cl = float(np.median(classical))
        med_pp = _median_rounds(build, trials=trials, max_rounds=max_rounds, seed=seed)
        ratio = med_pp / med_cl
        ratios.append(ratio)
        table.add_row(n, med_cl, med_pp, ratio, math.log2(n))
    table.notes.append(
        f"ratio at smallest vs largest n: {ratios[0]:.2f} -> {ratios[-1]:.2f}; "
        "a polylog gap stays within a small constant multiple of log n."
    )
    return table


# ---------------------------------------------------------------------------
# E19 — Lemmas VI.4/VI.5: blind gossip phases are productive
# ---------------------------------------------------------------------------


def exp_productive_phases(
    *,
    n: int = 32,
    degree: int = 4,
    trials: int = 10,
    c: float = 1.0,
    seed: int = 0,
    max_phases: int = 60,
) -> Table:
    """Empirical frequency of *productive* blind gossip phases.

    Lemma VI.4: while ``|S| ≤ n/2``, every phase of ``c·Δ²·log n`` rounds
    grows the winner-holding set by ``(1 + α/4)`` w.h.p.; Lemma VI.5: once
    ``|S| > n/2`` the complement shrinks by ``(1 - α/4)``.  We classify
    every phase of live runs against exactly these thresholds.
    """
    base = families.random_regular(n, degree, seed=seed)
    delta = base.max_degree
    alpha = vertex_expansion(base, seed=seed)
    phase_len = max(1, int(round(c * delta * delta * math.log2(n))))
    keys = uid_keys_random(n, seed)
    table = Table(
        title="E19 (Lemmas VI.4/VI.5): productive blind gossip phases",
        columns=[
            "workload",
            "phase rounds",
            "phases observed",
            "productive fraction (mean)",
            "productive fraction (min)",
        ],
        notes=[
            "Paper claim: each phase of c*Delta^2*log n rounds grows S by "
            "(1+alpha/4) while |S| <= n/2, then shrinks U by (1-alpha/4), "
            "w.h.p. (c=1 here; the paper's c is an unspecified constant).",
            f"Workloads on n={n}: {degree}-regular (alpha~{alpha:.2f}) and "
            "the double star (its own alpha, Delta).",
        ],
    )
    star = families.double_star((n - 2) // 2)
    star_alpha = 1.0 / (star.n // 2)
    star_phase = max(1, int(round(c * star.max_degree**2 * math.log2(star.n))))
    star_keys = uid_keys_random(star.n, seed + 1)

    for name, g, a, plen, kk in (
        (f"{degree}-regular", base, alpha, phase_len, keys),
        ("double star", star, star_alpha, star_phase, star_keys),
    ):
        fractions = []
        total = 0
        for t in range(trials):
            ts = seed + 41 * t
            algo = BlindGossipVectorized(kk)
            eng = VectorizedEngine(StaticDynamicGraph(g), algo, seed=ts)
            holders = lambda: int((eng.state.best == eng.state.target).sum())
            productive = 0
            phases = 0
            r = 0
            for _ in range(max_phases):
                s0 = holders()
                if s0 == g.n:
                    break
                for _ in range(plen):
                    r += 1
                    eng.step(r)
                s1 = holders()
                phases += 1
                if s0 <= g.n / 2:
                    productive += s1 >= (1 + a / 4) * s0
                else:
                    productive += (g.n - s1) <= (1 - a / 4) * (g.n - s0)
            if phases:
                fractions.append(productive / phases)
                total += phases
        table.add_row(
            name, plen, total, float(np.mean(fractions)), float(np.min(fractions))
        )
    return table


# ---------------------------------------------------------------------------
# E13 — Lemma VII.5: good phases occur with constant probability
# ---------------------------------------------------------------------------


def exp_good_phase_frequency(
    *,
    n: int = 32,
    degree: int = 4,
    taus: Sequence[float] = (1, 2, math.inf),
    trials: int = 10,
    max_phases: int = 60,
    seed: int = 0,
    beta: float = 1.0,
) -> Table:
    """Empirical frequency of *good* phases (Definition VII.3).

    Lemma VII.5 asserts every phase with ``b_i ≠ ⊥`` is good with at least
    a constant probability ``p_g``, for any τ ≥ 1.  We classify every phase
    of live bit convergence executions and report the measured frequency.
    """
    from repro.analysis.progress import PhaseClassifier
    from repro.graphs.adversary import PackingAdversary

    base = families.random_regular(n, degree, seed=seed)
    star_base = families.double_star(max(2, n // 4))
    delta = base.max_degree
    alpha = vertex_expansion(base, seed=seed)
    star_alpha = 1.0 / (star_base.n // 2)
    config = BitConvergenceConfig(n_upper=n, delta_bound=delta, beta=beta)
    star_config = BitConvergenceConfig(
        n_upper=star_base.n, delta_bound=star_base.max_degree, beta=beta
    )
    keys = uid_keys_random(n, seed)
    star_keys = uid_keys_random(star_base.n, seed + 1)
    table = Table(
        title="E13 (Lemma VII.5): empirical good-phase frequency",
        columns=[
            "tau",
            "workload",
            "phases observed",
            "good fraction (mean)",
            "good fraction (min)",
        ],
        notes=[
            "Paper claim: each phase with b_i != bottom is good with at "
            "least constant probability p_g, for any tau >= 1.",
            f"Benign workload: {degree}-regular graph on n={n} "
            f"(alpha~{alpha:.2f}) under relabeling churn; adversarial "
            f"workload: double star n={star_base.n} under the packing "
            "adversary.  Goodness threshold 1 + alpha/(4 f(tau_hat)) per "
            "Definition VII.3 (c=1).",
        ],
    )

    def classify(make_engine, alpha_used, tau) -> tuple[int, float, float]:
        fractions = []
        phases_total = 0
        for t in range(trials):
            ts = seed + 37 * t
            eng = make_engine(ts)
            clf = PhaseClassifier(eng, alpha=alpha_used, tau=tau)
            recs = clf.run(max_phases)
            if recs:
                fractions.append(clf.good_fraction)
                phases_total += len(recs)
        return phases_total, float(np.mean(fractions)), float(np.min(fractions))

    for tau in taus:
        def mk_benign(ts: int, tau=tau) -> VectorizedEngine:
            return VectorizedEngine(
                _churn(base, tau, ts),
                BitConvergenceVectorized(keys, config, tag_seed=ts, unique_tags=True),
                seed=ts,
            )

        def mk_adversarial(ts: int, tau=tau) -> VectorizedEngine:
            dg = (
                StaticDynamicGraph(star_base)
                if math.isinf(tau)
                else PackingAdversary(star_base, tau=int(tau))
            )
            return VectorizedEngine(
                dg,
                BitConvergenceVectorized(
                    star_keys, star_config, tag_seed=ts, unique_tags=True
                ),
                seed=ts,
            )

        tau_label = "inf" if math.isinf(tau) else int(tau)
        total, mean_f, min_f = classify(mk_benign, alpha, tau)
        table.add_row(tau_label, "regular+oblivious", total, mean_f, min_f)
        total, mean_f, min_f = classify(mk_adversarial, star_alpha, tau)
        table.add_row(tau_label, "double star+adaptive", total, mean_f, min_f)
    return table


# ---------------------------------------------------------------------------
# E15 — communication cost (connections until stabilization)
# ---------------------------------------------------------------------------


def exp_communication_cost(
    *,
    n: int = 64,
    degree: int = 8,
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 600_000,
    beta: float = 1.0,
) -> Table:
    """Total connections (≈ radio energy) each algorithm spends to elect.

    Rounds measure latency; *connections* measure the radio work the
    devices perform — the resource smartphone deployments actually care
    about.  Blind gossip connects promiscuously every round; bit
    convergence's advertised bits suppress useless connections, so it can
    win on energy even where it loses on latency.
    """
    base = families.random_regular(n, degree, seed=seed)
    star = families.double_star(degree * 2)
    keys = uid_keys_random(n, seed)
    star_keys = uid_keys_random(star.n, seed + 1)
    cfg = BitConvergenceConfig(n_upper=n, delta_bound=degree, beta=beta)
    star_cfg = BitConvergenceConfig(
        n_upper=star.n, delta_bound=star.max_degree, beta=beta
    )
    table = Table(
        title="E15: communication cost — total connections until stabilization",
        columns=[
            "algorithm",
            f"regular n={n}: rounds",
            "connections",
            f"double star n={star.n}: rounds",
            "connections",
        ],
        notes=[
            "connections ~ radio energy: each connection is 2 messages.",
            "medians over trials; the b=1 advertisement suppresses useless "
            "connections, trading rounds for radio work.",
        ],
    )

    def run_cells(make_algo, graph, kk) -> tuple[float, float]:
        rounds, conns = [], []
        for t in range(trials):
            ts = seed + 53 * t
            eng = VectorizedEngine(StaticDynamicGraph(graph), make_algo(ts, kk), seed=ts)
            res = eng.run(max_rounds)
            if not res.stabilized:
                raise RuntimeError("trial did not stabilize; raise max_rounds")
            rounds.append(res.rounds)
            conns.append(eng.connections_made)
        return float(np.median(rounds)), float(np.median(conns))

    cases = [
        (
            "blind gossip (b=0)",
            lambda ts, kk: BlindGossipVectorized(kk),
        ),
        (
            "bit convergence (b=1)",
            lambda ts, kk: BitConvergenceVectorized(
                kk,
                cfg if kk is keys else star_cfg,
                tag_seed=ts,
                unique_tags=True,
            ),
        ),
        (
            "async bit convergence",
            lambda ts, kk: AsyncBitConvergenceVectorized(
                kk,
                cfg if kk is keys else star_cfg,
                tag_seed=ts,
                unique_tags=True,
            ),
        ),
    ]
    for name, make_algo in cases:
        r_reg, c_reg = run_cells(make_algo, base, keys)
        r_star, c_star = run_cells(make_algo, star, star_keys)
        table.add_row(name, r_reg, c_reg, r_star, c_star)
    return table


# ---------------------------------------------------------------------------
# E16 — extension: k-gossip (all-to-all dissemination)
# ---------------------------------------------------------------------------


def exp_k_gossip(
    *,
    sizes: Sequence[int] = (8, 16, 32, 64),
    degree: int = 4,
    trials: int = 6,
    seed: int = 0,
    max_rounds: int = 600_000,
) -> Table:
    """All-to-all gossip completion time (paper's future-work direction).

    Every node starts with a rumor; a connection moves one rumor per
    direction.  Information-theoretic floor: ``n·(n-1)`` rumor copies at
    ≤ n per round ⇒ at least ``n - 1`` rounds even on a clique.  We
    measure the scaling on cliques and sparse regular graphs.
    """
    from repro.algorithms.k_gossip import KGossipVectorized

    table = Table(
        title="E16 (extension): k-gossip — all-to-all dissemination at b=0",
        columns=["n", "clique rounds", f"{degree}-regular rounds", "floor n-1"],
        notes=[
            "Paper's conclusion lists gossip among the problems this model "
            "opens; a connection carries one rumor per direction (O(1) "
            "budget).",
        ],
    )
    ns, clique_rounds = [], []
    for n in sizes:
        clique = families.clique(n)
        reg = families.random_regular(n, degree, seed=seed + n)

        def build_clique(ts: int, g=clique) -> VectorizedEngine:
            return VectorizedEngine(StaticDynamicGraph(g), KGossipVectorized(), seed=ts)

        def build_reg(ts: int, g=reg) -> VectorizedEngine:
            return VectorizedEngine(StaticDynamicGraph(g), KGossipVectorized(), seed=ts)

        med_clique = _median_rounds(
            build_clique, trials=trials, max_rounds=max_rounds, seed=seed
        )
        med_reg = _median_rounds(
            build_reg, trials=trials, max_rounds=max_rounds, seed=seed + 1
        )
        table.add_row(n, med_clique, med_reg, n - 1)
        ns.append(n)
        clique_rounds.append(med_clique)
    slope, r2 = loglog_slope(ns, clique_rounds)
    table.notes.append(
        f"clique log-log slope vs n: {slope:.2f} (R^2={r2:.3f}); "
        "random one-rumor-per-connection gossip pays a coupon-collector "
        "factor over the linear floor."
    )
    return table


# ---------------------------------------------------------------------------
# E17 — extension: averaging gossip vs expansion
# ---------------------------------------------------------------------------


def exp_averaging(
    *,
    n: int = 64,
    degree: int = 6,
    trials: int = 8,
    eps: float = 1e-3,
    seed: int = 0,
    max_rounds: int = 600_000,
) -> Table:
    """Distributed averaging: convergence time tracks 1/α across families.

    Each pairwise average contracts disagreement along one edge, so
    well-expanding topologies mix fast and elongated ones slowly — the
    same α story as leader election, on the aggregation problem the
    paper's conclusion proposes.
    """
    from repro.algorithms.averaging import AveragingVectorized

    cases = [
        ("clique", families.clique(n)),
        (f"random regular d={degree}", families.random_regular(n, degree, seed=seed)),
        ("torus", families.torus(max(3, int(math.isqrt(n))), max(3, n // max(3, int(math.isqrt(n)))))),
        ("ring", families.ring(n)),
        ("double star", families.double_star((n - 2) // 2)),
    ]
    table = Table(
        title="E17 (extension): averaging gossip — rounds to max deviation < eps",
        columns=["topology", "n", "alpha (est.)", "median rounds"],
        notes=[
            "Paper's conclusion lists data aggregation among the problems "
            "this model opens; pairwise averaging is the natural fit for "
            "single-connection rounds.",
            f"values ~ U[0,1], eps={eps}; alpha via the sweep estimator.",
        ],
    )
    for name, g in cases:
        alpha = vertex_expansion(g, seed=seed)
        values = make_rng(seed, "avg-values", g.n).random(g.n)

        def build(ts: int, g=g, values=values) -> VectorizedEngine:
            return VectorizedEngine(
                StaticDynamicGraph(g), AveragingVectorized(values, eps=eps), seed=ts
            )

        med = _median_rounds(build, trials=trials, max_rounds=max_rounds, seed=seed)
        table.add_row(name, g.n, alpha, med)
    return table


# ---------------------------------------------------------------------------
# E18 — extension: consensus on top of leader election
# ---------------------------------------------------------------------------


def exp_consensus(
    *,
    n: int = 32,
    degree: int = 4,
    taus: Sequence[float] = (1, 4, math.inf),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 600_000,
    beta: float = 1.0,
) -> Table:
    """Single-value consensus via async bit convergence carrying proposals.

    The paper motivates leader election as the primitive behind agreement;
    this experiment closes the loop: decision time equals leader election
    time (the value rides the winning pair for free), and agreement +
    validity hold in every trial.
    """
    from repro.algorithms.consensus import ConsensusVectorized

    base = families.random_regular(n, degree, seed=seed)
    delta = base.max_degree
    cfg = BitConvergenceConfig(n_upper=n, delta_bound=delta, beta=beta)
    keys = uid_keys_random(n, seed)
    table = Table(
        title="E18 (extension): consensus via leader election (values ride pairs)",
        columns=[
            "tau",
            "leader election rounds",
            "consensus rounds",
            "overhead",
            "agreement+validity",
        ],
        notes=[
            "Paper intro: leader election simplifies agreement — here "
            "consensus costs exactly one election.",
            f"Workload: {degree}-regular graph on n={n}; proposals are "
            "distinct integers; validity = decided value is the winner's.",
        ],
    )
    for tau in taus:
        le_rounds, cons_rounds = [], []
        ok = True
        for t in range(trials):
            ts = seed + 61 * t
            proposals = np.arange(1000, 1000 + n, dtype=np.int64)

            le = VectorizedEngine(
                _churn(base, tau, ts),
                AsyncBitConvergenceVectorized(keys, cfg, tag_seed=ts, unique_tags=True),
                seed=ts,
            )
            res = le.run(max_rounds)
            if not res.stabilized:
                raise RuntimeError("leader election did not stabilize")
            le_rounds.append(res.rounds)

            algo = ConsensusVectorized(
                keys, cfg, proposals, tag_seed=ts, unique_tags=True
            )
            ce = VectorizedEngine(_churn(base, tau, ts), algo, seed=ts)
            res = ce.run(max_rounds)
            if not res.stabilized:
                raise RuntimeError("consensus did not stabilize")
            cons_rounds.append(res.rounds)
            decisions = algo.decisions(ce.state)
            tags = draw_id_tags(n, cfg, ts, unique=True)
            win = np.lexsort((keys, tags))[0]
            ok &= bool((decisions == proposals[win]).all())
        med_le = float(np.median(le_rounds))
        med_co = float(np.median(cons_rounds))
        table.add_row(
            "inf" if math.isinf(tau) else int(tau),
            med_le,
            med_co,
            med_co / med_le,
            ok,
        )
    return table


# ---------------------------------------------------------------------------
# A1 — ablation: group length multiplier
# ---------------------------------------------------------------------------


def exp_ablation_group_len(
    *,
    n: int = 32,
    degree: int = 4,
    tau: int = 2,
    multipliers: Sequence[int] = (1, 2, 4, 8),
    trials: int = 6,
    seed: int = 0,
    max_rounds: int = 400_000,
    beta: float = 1.0,
    engine: str = "single",
) -> Table:
    """Vary the group-length multiplier of bit convergence.

    The paper fixes groups of ``2·log Δ`` rounds so every group contains a
    ``τ̂``-stable stretch.  Shorter groups shrink the stable stretch PPUSH
    can exploit under churn; longer groups pay more rounds per phase.
    """
    _check_engine(engine)
    base = families.random_regular(n, degree, seed=seed)
    delta = base.max_degree
    keys = uid_keys_random(n, seed)
    table = Table(
        title="A1 (ablation): bit convergence group length multiplier",
        columns=["multiplier", "group rounds", "phase rounds", "median rounds"],
        notes=[
            "Design choice under test: groups of 2*log(Delta) rounds "
            "(Sec VII); churn every tau rounds makes too-short groups lossy.",
            f"Workload: {degree}-regular n={n}, relabel churn tau={tau}.",
        ],
    )
    for mult in multipliers:
        config = BitConvergenceConfig(
            n_upper=n, delta_bound=delta, beta=beta, group_multiplier=mult
        )

        if engine == "batched":

            def build_b(seeds, config=config):
                return (
                    _churn_batched(base, tau, seeds),
                    BitConvergenceBatched(keys, config, unique_tags=True),
                )

            med = _median_rounds_batched(
                build_b, trials=trials, max_rounds=max_rounds, seed=seed
            )
        else:

            def build(ts: int, config=config) -> VectorizedEngine:
                return VectorizedEngine(
                    PeriodicRelabelDynamicGraph(base, tau, seed=ts),
                    BitConvergenceVectorized(keys, config, tag_seed=ts, unique_tags=True),
                    seed=ts,
                )

            med = _median_rounds(build, trials=trials, max_rounds=max_rounds, seed=seed)
        table.add_row(mult, config.group_len, config.phase_len, med)
    return table


# ---------------------------------------------------------------------------
# A2 — ablation: async tag width (k) sensitivity
# ---------------------------------------------------------------------------


def exp_ablation_async_tag_width(
    *,
    n: int = 32,
    degree: int = 4,
    betas: Sequence[float] = (1.0, 1.5, 2.0),
    trials: int = 5,
    seed: int = 0,
    max_rounds: int = 1_000_000,
) -> Table:
    """Vary the ID-tag width ``k`` of the async algorithm.

    Section VIII's analysis pays ``k⁴`` for both endpoints of a matching
    edge to sample the same bit position: wider tags (larger β) cost
    polynomially in ``k`` while buying lower collision probability.
    """
    base = families.random_regular(n, degree, seed=seed)
    delta = base.max_degree
    keys = uid_keys_random(n, seed)
    table = Table(
        title="A2 (ablation): async bit convergence tag width",
        columns=["beta", "k (tag bits)", "b (advert bits)", "median rounds"],
        notes=[
            "Design choice under test: k = ceil(beta*log N); the async "
            "analysis pays poly(k) for random position alignment.",
            f"Workload: static {degree}-regular graph on n={n}.",
        ],
    )
    for beta in betas:
        config = BitConvergenceConfig(n_upper=n, delta_bound=delta, beta=beta)

        def build(ts: int, config=config) -> VectorizedEngine:
            return VectorizedEngine(
                StaticDynamicGraph(base),
                AsyncBitConvergenceVectorized(keys, config, tag_seed=ts, unique_tags=True),
                seed=ts,
            )

        med = _median_rounds(build, trials=trials, max_rounds=max_rounds, seed=seed)
        table.add_row(beta, config.k, config_tag_bits(config), med)
    return table


# ---------------------------------------------------------------------------
# A3 — ablation: PUSH-only / PULL-only vs PUSH-PULL at b=0
# ---------------------------------------------------------------------------


def exp_ablation_push_pull_direction(
    *,
    leaves: int = 16,
    regular_n: int = 32,
    degree: int = 4,
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 600_000,
) -> Table:
    """Restrict the rumor to one direction per connection.

    The paper's b=0 strategy is symmetric PUSH-PULL.  This ablation runs
    PUSH-only (rumor crosses proposer→acceptor) and PULL-only
    (acceptor→proposer) on a star-bottleneck graph and a regular graph:
    on the double star, each single direction loses one of the two ways a
    hub crossing can happen, roughly doubling the bottleneck cost.
    """
    star = families.double_star(leaves)
    reg = families.random_regular(regular_n, degree, seed=seed)
    table = Table(
        title="A3 (ablation): rumor direction at b=0 (PUSH-PULL vs PUSH vs PULL)",
        columns=["direction", f"double star (n={star.n})", f"{degree}-regular (n={regular_n})"],
        notes=[
            "Design choice under test: the symmetric exchange of the b=0 "
            "strategy (Sec VI) — connections inform in both directions.",
            "Median rounds to full dissemination, source at a leaf / vertex 0.",
        ],
    )
    for direction in ("both", "push", "pull"):
        def build_star(ts: int, direction=direction) -> VectorizedEngine:
            return VectorizedEngine(
                StaticDynamicGraph(star),
                PushPullVectorized(np.array([2]), direction=direction),
                seed=ts,
            )

        def build_reg(ts: int, direction=direction) -> VectorizedEngine:
            return VectorizedEngine(
                StaticDynamicGraph(reg),
                PushPullVectorized(np.array([0]), direction=direction),
                seed=ts,
            )

        med_star = _median_rounds(
            build_star, trials=trials, max_rounds=max_rounds, seed=seed
        )
        med_reg = _median_rounds(
            build_reg, trials=trials, max_rounds=max_rounds, seed=seed + 1
        )
        table.add_row(direction, med_star, med_reg)
    return table


# ---------------------------------------------------------------------------
# A4 — async model: stabilization vs the delay bound Δ (event tier)
# ---------------------------------------------------------------------------


def _async_median_ticks(
    setup_builder,
    dg_builder,
    *,
    delta: int,
    scheduler: str,
    trials: int,
    max_ticks: int,
    seed: int,
) -> float:
    """Median virtual-time ticks to stabilize on the event tier."""
    from repro.asyncsim import EventSimEngine

    def build(ts: int):
        setup = setup_builder()
        return EventSimEngine(
            dg_builder(ts),
            setup.nodes,
            seed=ts,
            delta=delta,
            scheduler=scheduler,
            stop_when=setup.stop_when,
            progress=setup.progress,
        )

    return _median_rounds(build, trials=trials, max_rounds=max_ticks, seed=seed)


def exp_async_delta_sweep(
    *,
    n: int = 24,
    degree: int = 4,
    deltas: Sequence[int] = (1, 2, 4, 8),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 60_000,
) -> Table:
    """Sweep the bounded-delay parameter Δ on the event tier.

    The asynchronous reformulation (Newport-Weaver-Zheng) replaces
    lock-step rounds with scheduler-delayed events, every one delivered
    within ``Δ`` ticks.  Stabilization should degrade gracefully —
    roughly linearly in Δ under uniform random delays, since Δ only
    dilates each node's local clock — with the synchronous round count
    as the fixed reference point.
    """
    base = families.random_regular(n, degree, seed=seed)
    us = UIDSpace(n, seed=seed)
    keys = uid_keys_random(n, seed)

    def build_sync(ts: int) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(base), BlindGossipVectorized(keys), seed=ts
        )

    sync_med = _median_rounds(
        build_sync, trials=trials, max_rounds=max_rounds, seed=seed
    )
    table = Table(
        title="A4 (async model): blind gossip stabilization vs delay bound Delta",
        columns=["delta", "median ticks", "ratio to sync rounds"],
        notes=[
            "Event tier, seeded random scheduler: every event is delivered "
            "within [1, Delta] virtual-time ticks.",
            f"Workload: blind gossip on static {degree}-regular n={n}; "
            f"synchronous reference = {sync_med:.0f} median rounds.",
        ],
    )
    from repro.asyncsim import blind_gossip_setup

    for delta in deltas:
        med = _async_median_ticks(
            lambda: blind_gossip_setup(us),
            lambda ts: StaticDynamicGraph(base),
            delta=delta,
            scheduler="random",
            trials=trials,
            max_ticks=max_rounds,
            seed=seed,
        )
        table.add_row(delta, med, med / sync_med)
    return table


# ---------------------------------------------------------------------------
# A5 — async model: adversarial vs random bounded-delay scheduling
# ---------------------------------------------------------------------------


def exp_async_scheduler_adversary(
    *,
    n: int = 24,
    degree: int = 4,
    deltas: Sequence[int] = (1, 4, 8),
    trials: int = 8,
    seed: int = 0,
    max_rounds: int = 60_000,
) -> Table:
    """Adversarial (maximal-dilation) vs random scheduling across Δ.

    The bounded-delay adversary may hold every event the full ``Δ``
    ticks; for monotone gossip that pointwise-maximal schedule is the
    worst case (early delivery only helps), so the adversarial column
    should dominate the random one — by about ``Δ`` over the random
    scheduler's mean delay ``(Δ+1)/2`` — while remaining finite: bounded
    delay preserves the async model's progress guarantee.
    """
    base = families.random_regular(n, degree, seed=seed)
    us = UIDSpace(n, seed=seed)
    table = Table(
        title="A5 (async model): adversarial vs random bounded-delay scheduling",
        columns=["delta", "random median", "adversarial median", "slowdown"],
        notes=[
            "Event tier, blind gossip on static "
            f"{degree}-regular n={n}; medians in virtual-time ticks.",
            "Adversary: every event held the full Delta ticks (worst case "
            "for monotone gossip); slowdown = adversarial / random.",
        ],
    )
    from repro.asyncsim import blind_gossip_setup

    for delta in deltas:
        meds = {}
        for scheduler in ("random", "adversarial"):
            meds[scheduler] = _async_median_ticks(
                lambda: blind_gossip_setup(us),
                lambda ts: StaticDynamicGraph(base),
                delta=delta,
                scheduler=scheduler,
                trials=trials,
                max_ticks=max_rounds,
                seed=seed,
            )
        table.add_row(
            delta,
            meds["random"],
            meds["adversarial"],
            meds["adversarial"] / meds["random"],
        )
    return table


# ---------------------------------------------------------------------------
# R1 — fault extension: connection drops inflate stabilization by ~1/(1-p)
# ---------------------------------------------------------------------------


def _fault_outcomes(
    build,
    build_batched,
    *,
    engine: str,
    trials: int,
    max_rounds: int,
    seed: int,
    fault_plan: FaultPlan | None,
):
    """Run one faulted configuration on the chosen engine tier.

    ``build(trial_seed, fault_plan)`` makes a single engine;
    ``build_batched(seeds)`` returns the batch's (graph, algorithm) pair
    — the plan itself is forwarded through the batched runner.
    """
    if engine == "batched":
        return run_trials_batched(
            build_batched,
            trials=trials,
            max_rounds=max_rounds,
            seed=seed,
            fault_plan=fault_plan,
        )
    return run_trials(
        lambda ts: build(ts, fault_plan),
        trials=trials,
        max_rounds=max_rounds,
        seed=seed,
    )


def exp_fault_drop_inflation(
    *,
    leaves: int = 16,
    drop_ps: Sequence[float] = (0.0, 0.3, 0.6),
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 400_000,
    engine: str = "single",
) -> Table:
    """Connection drops rescale progress by the survival rate ``1 - p``.

    Both blind gossip (leader election, b=0) and PPUSH (rumor spreading,
    b=1) advance only through completed payload exchanges.  Dropping each
    established connection i.i.d. with probability ``p`` *after* the
    handshake leaves the proposal/acceptance dynamics untouched and thins
    the productive-connection rate by ``1 - p``, so stabilization should
    inflate by roughly ``1/(1-p)`` for both algorithms — a fault model
    sanity check that the drop hook sits after acceptance, not before.
    """
    engine = _check_engine(engine)
    base = families.double_star(leaves)
    n = base.n
    keys = uid_keys_random(n, seed)
    sources = np.array([0])
    table = Table(
        title="R1 (fault ext): connection-drop inflation on the double star",
        columns=[
            "drop p",
            "gossip median",
            "gossip inflation",
            "PPUSH median",
            "PPUSH inflation",
            "1/(1-p)",
        ],
        notes=[
            "Claim: dropping established connections i.i.d. with probability p "
            "(after acceptance, before the payload exchange) inflates "
            "stabilization by ~1/(1-p) for both blind gossip and PPUSH.",
            f"Workload: double star with {leaves} leaves per center "
            f"(n={n}), static topology.",
        ],
    )

    def build_gossip(ts: int, plan: FaultPlan | None) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(base), BlindGossipVectorized(keys), seed=ts,
            fault_plan=plan,
        )

    def build_gossip_b(seeds):
        return StaticDynamicGraph(base), BlindGossipBatched(keys)

    def build_ppush(ts: int, plan: FaultPlan | None) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(base), PPushVectorized(sources), seed=ts,
            fault_plan=plan,
        )

    def build_ppush_b(seeds):
        return StaticDynamicGraph(base), PPushBatched(sources)

    base_g = base_p = None
    for p in drop_ps:
        plan = FaultPlan(connection_drop=ConnectionDropModel(float(p)))
        med_g = trial_summary(
            _fault_outcomes(
                build_gossip, build_gossip_b, engine=engine, trials=trials,
                max_rounds=max_rounds, seed=seed, fault_plan=plan,
            )
        ).median
        med_p = trial_summary(
            _fault_outcomes(
                build_ppush, build_ppush_b, engine=engine, trials=trials,
                max_rounds=max_rounds, seed=seed + 1, fault_plan=plan,
            )
        ).median
        if base_g is None:
            base_g, base_p = med_g, med_p
        table.add_row(
            float(p),
            med_g,
            med_g / max(base_g, 1e-9),
            med_p,
            med_p / max(base_p, 1e-9),
            1.0 / (1.0 - float(p)),
        )
    table.notes.append(
        "Inflation columns are medians relative to the p=0 row; both should "
        "track 1/(1-p) within trial noise."
    )
    return table


# ---------------------------------------------------------------------------
# R2 — Section VIII regime: recovery from mass state corruption
# ---------------------------------------------------------------------------


def exp_fault_state_corruption(
    *,
    n: int = 32,
    degree: int = 4,
    fractions: Sequence[float] = (1 / 3, 2 / 3, 1.0),
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 400_000,
    engine: str = "single",
) -> Table:
    """Corrupt a converged network and measure time back to agreement.

    Section VIII's transient-fault regime: after the network stabilizes,
    an adversary overwrites a random fraction of the nodes' state with
    arbitrary values.  A self-stabilizing min-propagation process should
    recover in about one fresh stabilization time regardless of the
    corrupted fraction — corrupting *everyone* is exactly a fresh start
    with a new key assignment.
    """
    engine = _check_engine(engine)
    g = families.random_regular(n, degree, seed=seed + n)
    keys = uid_keys_random(n, seed)

    def build(ts: int, plan: FaultPlan | None) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=ts,
            fault_plan=plan,
        )

    def build_b(seeds):
        return StaticDynamicGraph(g), BlindGossipBatched(keys)

    fresh = trial_summary(
        _fault_outcomes(
            build, build_b, engine=engine, trials=trials,
            max_rounds=max_rounds, seed=seed, fault_plan=None,
        )
    ).median
    # Corrupt well after every trial has certainly converged.
    event_round = int(8 * max(fresh, 1.0))

    table = Table(
        title="R2 (Sec VIII): recovery after mass state corruption, blind gossip",
        columns=["fraction", "recovery median", "recovery / fresh"],
        notes=[
            "Claim: overwriting a random fraction of node state with arbitrary "
            "values costs about one fresh stabilization time to repair, for "
            "any fraction (fraction 1.0 is a fresh start).",
            f"Workload: static {degree}-regular graph, n={n}; corruption "
            f"event at round {event_round} (fresh median: {fresh:.0f} rounds).",
        ],
    )
    for f in fractions:
        plan = FaultPlan(
            state_corruption=(
                StateCorruptionEvent(round=event_round, fraction=float(f)),
            )
        )
        outcomes = _fault_outcomes(
            build, build_b, engine=engine, trials=trials,
            max_rounds=max_rounds, seed=seed, fault_plan=plan,
        )
        recoveries = [
            max(0, o.rounds - event_round) for o in outcomes if o.stabilized
        ]
        if len(recoveries) != len(outcomes):
            raise RuntimeError("corrupted trials failed to restabilize")
        rec = float(np.median(recoveries))
        table.add_row(float(f), rec, rec / max(fresh, 1e-9))
    table.notes.append(
        "Recovery = stabilization round - corruption round; the ratio column "
        "should stay near 1 across fractions (same order as a fresh run)."
    )
    return table


# ---------------------------------------------------------------------------
# R3 — fault extension: stabilization survives crash/rejoin churn
# ---------------------------------------------------------------------------


def exp_fault_crash_churn(
    *,
    n: int = 32,
    degree: int = 4,
    crash_fracs: Sequence[float] = (0.0, 0.25, 0.5),
    trials: int = 10,
    seed: int = 0,
    max_rounds: int = 400_000,
    engine: str = "single",
) -> Table:
    """Crash/rejoin churn during convergence delays but never derails.

    A seeded schedule crashes a fraction of the nodes for a window of
    rounds during the convergence phase; every node rejoins with reset
    (rebooted) state.  Because reset state is each node's own initial
    state, the eventual winner is unchanged, and stabilization should
    complete within a small factor of the clean run once the last node
    has rejoined (the plan's quiesce round).
    """
    engine = _check_engine(engine)
    g = families.random_regular(n, degree, seed=seed + n)
    keys = uid_keys_random(n, seed)

    def build(ts: int, plan: FaultPlan | None) -> VectorizedEngine:
        return VectorizedEngine(
            StaticDynamicGraph(g), BlindGossipVectorized(keys), seed=ts,
            fault_plan=plan,
        )

    def build_b(seeds):
        return StaticDynamicGraph(g), BlindGossipBatched(keys)

    clean = trial_summary(
        _fault_outcomes(
            build, build_b, engine=engine, trials=trials,
            max_rounds=max_rounds, seed=seed, fault_plan=None,
        )
    ).median
    # Crash windows land inside the convergence phase of the clean run.
    last_round = max(6, int(clean))

    table = Table(
        title="R3 (fault ext): crash/rejoin churn during convergence, blind gossip",
        columns=[
            "crash fraction",
            "crashed nodes",
            "quiesce round",
            "median rounds",
            "recovery after quiesce",
        ],
        notes=[
            "Claim: crashing a fraction of the nodes mid-convergence (all "
            "rejoin with reset state) delays stabilization but never changes "
            "the winner or prevents agreement.",
            f"Workload: static {degree}-regular graph, n={n}; crash windows "
            f"scheduled in rounds [2, {last_round}] "
            f"(clean median: {clean:.0f} rounds).",
        ],
    )
    for frac in crash_fracs:
        count = int(round(n * float(frac)))
        if count == 0:
            plan = None
            quiesce = 0
        else:
            plan = FaultPlan(
                crashes=random_crash_schedule(
                    n, count, first_round=2, last_round=last_round,
                    seed=seed + 17,
                )
            )
            quiesce = plan.quiesce_round
        outcomes = _fault_outcomes(
            build, build_b, engine=engine, trials=trials,
            max_rounds=max_rounds, seed=seed, fault_plan=plan,
        )
        if not all(o.stabilized for o in outcomes):
            raise RuntimeError("churned trials failed to stabilize")
        med = trial_summary(outcomes).median
        recovery = float(
            np.median([max(0, o.rounds - quiesce) for o in outcomes])
        )
        table.add_row(float(frac), count, quiesce, med, recovery)
    table.notes.append(
        "Recovery after quiesce = stabilization round - last rejoin; it "
        "should stay within a small factor of the clean median."
    )
    return table


# ---------------------------------------------------------------------------
# S1 — Scaling: stabilization shape up to n = 10^6 (chunked engine)
# ---------------------------------------------------------------------------


def exp_scaling_large_n(
    *,
    sizes: Sequence[int] = (8192, 32768, 131072),
    degree: int = 8,
    trials: int = 3,
    seed: int = 0,
    max_rounds: int = 4000,
    chunk_nodes: int = 65536,
    check_every: int = 1,
) -> Table:
    """Blind gossip rounds vs ``n`` at constant degree, chunked engine.

    Random ``d``-regular graphs have constant vertex expansion w.h.p., so
    Theorem VI.1's ``O((1/α)·Δ²·log² n)`` bound leaves only the
    ``log² n`` factor when ``Δ`` is pinned: stabilization must grow
    *polylogarithmically* in ``n`` — the log-log slope of rounds vs
    ``n`` stays far below any polynomial exponent.  Each sweep point runs
    through :class:`~repro.core.largen.LargeNEngine`, exercising the
    chunked pick pass at full occupancy and the sparse 2-hop frontier in
    the endgame, up to ``n = 10^6`` at the standard profile.
    """
    table = Table(
        title="S1 (scaling): blind gossip stabilization vs n at constant Delta "
        "(chunked engine)",
        columns=[
            "n",
            "Delta",
            "median rounds",
            "log2(n)^2",
            "rounds / log2(n)^2",
            "all stabilized",
        ],
        notes=[
            "Paper claim: O((1/alpha) Delta^2 log^2 n) rounds; constant alpha "
            f"and Delta={degree} on random regular graphs leaves only log^2 n.",
            f"Engine: LargeNEngine (chunk_nodes={chunk_nodes}), chunked pick "
            "pass plus the sparse endgame frontier; independent seeded trials.",
        ],
    )
    for n in sizes:
        g = families.random_regular(n, degree, seed=seed + n)
        keys = uid_keys_random(n, seed + n)

        def build(ts: int, g=g, keys=keys) -> LargeNEngine:
            return LargeNEngine(
                StaticDynamicGraph(g),
                BlindGossipVectorized(keys),
                seed=ts,
                chunk_nodes=chunk_nodes,
            )

        outcomes = run_trials(
            build,
            trials=trials,
            max_rounds=max_rounds,
            seed=seed,
            check_every=check_every,
        )
        med = trial_summary(outcomes).median
        l2sq = math.log2(n) ** 2
        table.add_row(
            n, degree, med, l2sq, med / l2sq, all(o.stabilized for o in outcomes)
        )
    slope, r2 = loglog_slope(table.column("n"), table.column("median rounds"))
    table.notes.append(
        f"log-log slope of median rounds vs n: {slope:.3f} (R^2={r2:.3f}); "
        "polylog growth predicts a slope well below 0.45."
    )
    return table


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Experiment:
    """A registered experiment: claim, function, and per-profile kwargs."""

    exp_id: str
    claim: str
    func: Callable[..., Table]
    quick: Mapping[str, object] = field(default_factory=dict)
    standard: Mapping[str, object] = field(default_factory=dict)

    def run(self, profile: str = "quick", **overrides) -> Table:
        kwargs = dict(self.quick if profile == "quick" else self.standard)
        kwargs.update(overrides)
        return self.func(**kwargs)


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        Experiment(
            "E1",
            "Lemma V.1: gamma >= alpha/4",
            exp_lemma_v1,
            quick=dict(n_small=8, random_graphs=3),
            standard=dict(n_small=12, random_graphs=8),
        ),
        Experiment(
            "E2",
            "Thm V.2: PPUSH informs >= m/f(r) across a cut",
            exp_ppush_matching,
            quick=dict(m=64, d=8, trials=10),
            standard=dict(m=256, d=16, trials=40),
        ),
        Experiment(
            "E3",
            "Thm VI.1: blind gossip O((1/alpha) Delta^2 log^2 n)",
            exp_blind_gossip_scaling,
            quick=dict(leaf_counts=(4, 8, 16), trials=6),
            standard=dict(
                leaf_counts=(4, 8, 16, 32, 64), trials=20, engine="batched"
            ),
        ),
        Experiment(
            "E4",
            "Sec VI: Omega(Delta^2/sqrt(alpha)) on the line of stars",
            exp_lower_bound_line_of_stars,
            quick=dict(star_sizes=(3, 4, 5), trials=5),
            standard=dict(star_sizes=(3, 4, 5, 6, 8), trials=15, engine="batched"),
        ),
        Experiment(
            "E5",
            "Cor VI.6: PUSH-PULL O((1/alpha) Delta^2 log^2 n) at b=0",
            exp_push_pull,
            quick=dict(leaf_counts=(4, 8, 16), trials=6),
            standard=dict(
                leaf_counts=(4, 8, 16, 32, 64), trials=20, engine="batched"
            ),
        ),
        Experiment(
            "E6",
            "Thm VII.2: bit convergence O((1/alpha) Delta^(1/tau_hat) tau_hat log^5 n)",
            exp_bit_convergence_tau,
            quick=dict(n=64, degree=16, taus=(1, 2, 4, math.inf), trials=5),
            standard=dict(
                n=128, degree=16, taus=(1, 2, 4, 8, 16, math.inf), trials=12,
                engine="batched",
            ),
        ),
        Experiment(
            "E7",
            "Sec VII: b=0 vs b=1 gap grows from Delta to Delta^2 with tau",
            exp_gap_b0_b1,
            quick=dict(leaves=32, taus=(1, 4, math.inf), trials=5),
            standard=dict(
                leaves=64, taus=(1, 2, 4, 8, math.inf), trials=12, engine="batched"
            ),
        ),
        Experiment(
            "E8",
            "Thm VIII.2: async variant within polylog of the original",
            exp_async,
            quick=dict(n=16, degree=4, trials=4),
            standard=dict(n=32, degree=4, trials=10),
        ),
        Experiment(
            "E9",
            "Sec VIII: self-stabilization after joining components",
            exp_self_stabilization,
            quick=dict(component_n=8, degree=3, trials=4),
            standard=dict(component_n=16, degree=4, trials=10),
        ),
        Experiment(
            "E10",
            "Classical vs mobile: single-connection limit costs Delta^2",
            exp_classical_vs_mobile,
            quick=dict(leaf_counts=(4, 8, 16), trials=6),
            standard=dict(leaf_counts=(4, 8, 16, 32, 64), trials=20),
        ),
        Experiment(
            "E11",
            "1/alpha drives the cost at tau=1 (vs KLO O(n^2))",
            exp_dynamic_comparison,
            quick=dict(sizes=(16, 64), trials=4),
            standard=dict(sizes=(32, 64, 128, 256), trials=10, engine="batched"),
        ),
        Experiment(
            "E12",
            "Extension: adaptive adversary realizes the worst case oblivious churn cannot",
            exp_adaptive_adversary,
            quick=dict(leaf_counts=(8, 16), trials=5),
            standard=dict(leaf_counts=(8, 16, 32, 64), trials=12, engine="batched"),
        ),
        Experiment(
            "E14",
            "PPUSH (b=1) matches classical PUSH-PULL within log factors",
            exp_ppush_vs_classical,
            quick=dict(sizes=(32, 64), degree=8, trials=6),
            standard=dict(sizes=(32, 64, 128, 256, 512), degree=8, trials=15),
        ),
        Experiment(
            "E19",
            "Lemmas VI.4/VI.5: blind gossip phases are productive w.h.p.",
            exp_productive_phases,
            quick=dict(n=16, degree=4, trials=5, max_phases=30),
            standard=dict(n=32, degree=4, trials=15),
        ),
        Experiment(
            "E13",
            "Lemma VII.5: good phases occur with constant probability",
            exp_good_phase_frequency,
            quick=dict(n=16, degree=4, taus=(1, math.inf), trials=5, max_phases=40),
            standard=dict(n=32, degree=4, taus=(1, 2, 4, math.inf), trials=15),
        ),
        Experiment(
            "E15",
            "Communication cost: connections until stabilization (radio energy)",
            exp_communication_cost,
            quick=dict(n=32, degree=4, trials=4),
            standard=dict(n=64, degree=8, trials=10),
        ),
        Experiment(
            "E16",
            "Extension: k-gossip all-to-all dissemination",
            exp_k_gossip,
            quick=dict(sizes=(8, 16, 32), degree=4, trials=4),
            standard=dict(sizes=(8, 16, 32, 64, 128), degree=4, trials=10),
        ),
        Experiment(
            "E17",
            "Extension: averaging gossip (data aggregation) tracks 1/alpha",
            exp_averaging,
            quick=dict(n=24, degree=4, trials=4),
            standard=dict(n=64, degree=6, trials=10),
        ),
        Experiment(
            "E18",
            "Extension: consensus via leader election (agreement + validity)",
            exp_consensus,
            quick=dict(n=16, degree=4, taus=(1, math.inf), trials=4),
            standard=dict(n=32, degree=4, taus=(1, 4, math.inf), trials=10),
        ),
        Experiment(
            "A1",
            "Ablation: group length 2*log(Delta)",
            exp_ablation_group_len,
            quick=dict(n=16, degree=4, multipliers=(1, 2, 4), trials=4),
            standard=dict(
                n=32, degree=4, multipliers=(1, 2, 4, 8), trials=10, engine="batched"
            ),
        ),
        Experiment(
            "A2",
            "Ablation: async tag width k",
            exp_ablation_async_tag_width,
            quick=dict(n=16, degree=4, betas=(1.0, 1.5), trials=3),
            standard=dict(n=32, degree=4, betas=(1.0, 1.5, 2.0), trials=8),
        ),
        Experiment(
            "A3",
            "Ablation: PUSH-only / PULL-only vs symmetric PUSH-PULL at b=0",
            exp_ablation_push_pull_direction,
            quick=dict(leaves=8, regular_n=16, degree=4, trials=5),
            standard=dict(leaves=32, regular_n=64, degree=8, trials=12),
        ),
        Experiment(
            "A4",
            "Async model: stabilization degrades ~linearly in the delay bound Delta",
            exp_async_delta_sweep,
            quick=dict(n=16, degree=4, deltas=(1, 2, 4), trials=5),
            standard=dict(n=32, degree=4, deltas=(1, 2, 4, 8), trials=12),
        ),
        Experiment(
            "A5",
            "Async model: maximal-dilation adversary dominates random scheduling",
            exp_async_scheduler_adversary,
            quick=dict(n=16, degree=4, deltas=(1, 4), trials=5),
            standard=dict(n=32, degree=4, deltas=(1, 4, 8), trials=12),
        ),
        Experiment(
            "R1",
            "Fault extension: connection drops inflate stabilization ~1/(1-p)",
            exp_fault_drop_inflation,
            quick=dict(leaves=8, drop_ps=(0.0, 0.5), trials=5),
            standard=dict(
                leaves=16, drop_ps=(0.0, 0.3, 0.6), trials=20, engine="batched"
            ),
        ),
        Experiment(
            "R2",
            "Sec VIII regime: recovery from mass state corruption ~ fresh run",
            exp_fault_state_corruption,
            quick=dict(n=16, degree=4, fractions=(0.5, 1.0), trials=5),
            standard=dict(
                n=32, degree=4, fractions=(1 / 3, 2 / 3, 1.0), trials=20,
                engine="batched",
            ),
        ),
        Experiment(
            "R3",
            "Fault extension: stabilization survives crash/rejoin churn",
            exp_fault_crash_churn,
            quick=dict(n=16, degree=4, crash_fracs=(0.0, 0.25), trials=5),
            standard=dict(
                n=32, degree=4, crash_fracs=(0.0, 0.25, 0.5), trials=16,
                engine="batched",
            ),
        ),
        Experiment(
            "S1",
            "Scaling: stabilization grows polylogarithmically in n up to 10^6",
            exp_scaling_large_n,
            quick=dict(sizes=(8192, 32768, 131072), trials=3),
            standard=dict(
                sizes=(65536, 262144, 1048576), trials=3, check_every=4
            ),
        ),
        Experiment(
            "T1",
            "Tournament: blind gossip vs the adversary grid (open-world)",
            exp_tournament_blind_gossip,
            quick=dict(n=24, degree=6, taus=(1, 2, 4), trials=4, max_rounds=600),
            standard=dict(
                n=48, degree=6, taus=(1, 4, 16), trials=10, max_rounds=1500,
                churn_events=24, churn_last=80,
            ),
        ),
        Experiment(
            "T2",
            "Tournament: PUSH-PULL vs the adversary grid (open-world)",
            exp_tournament_push_pull,
            quick=dict(n=24, degree=6, taus=(1, 2, 4), trials=4, max_rounds=600),
            standard=dict(
                n=48, degree=6, taus=(1, 4, 16), trials=10, max_rounds=1500,
                churn_events=24, churn_last=80,
            ),
        ),
        Experiment(
            "T3",
            "Tournament: PPUSH vs the adversary grid (open-world)",
            exp_tournament_ppush,
            quick=dict(n=24, degree=6, taus=(1, 2, 4), trials=4, max_rounds=600),
            standard=dict(
                n=48, degree=6, taus=(1, 4, 16), trials=10, max_rounds=1500,
                churn_events=24, churn_last=80,
            ),
        ),
    ]
}


def registry_order(ids: "Sequence[str] | None" = None) -> list[str]:
    """Canonical campaign/report ordering of experiment ids.

    E-series first (numerically), then ablations and related-work
    extensions — the order EXPERIMENTS.md and ``standard_results.txt``
    present results in.  Pass ``ids`` to order a subset (unknown ids
    raise).
    """
    known = list(EXPERIMENTS)
    if ids is not None:
        unknown = [i for i in ids if i not in EXPERIMENTS]
        if unknown:
            raise KeyError(f"unknown experiment ids {unknown}; known: {sorted(known)}")
        known = [i for i in known if i in set(ids)]
    return sorted(known, key=lambda k: (k[0] != "E", len(k), k))


def run_experiment(exp_id: str, profile: str = "quick", **overrides) -> Table:
    """Run a registered experiment by id (``E1`` … ``E19``, ``A*``, ``R*``)."""
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {sorted(EXPERIMENTS)}")
    return EXPERIMENTS[exp_id].run(profile, **overrides)
