"""Segmented operations on CSR adjacency structures.

The vectorized round engine (:mod:`repro.core.vectorized`) represents the
current topology as a CSR pair ``(indptr, indices)`` and needs two
primitives executed once per simulated round:

``segmented_random_pick``
    every *sender* chooses one neighbor uniformly at random, optionally
    restricted by a boolean predicate over neighbors (e.g. "neighbors
    currently advertising tag 1");

``segmented_uniform_accept``
    every *receiver* with at least one incoming proposal accepts one
    uniformly at random.

Both are fully vectorized (no per-node Python loop); this is the hot path
identified when profiling large sweeps, per the optimize-the-bottleneck
workflow.  The reference engine implements the same semantics with plain
per-node loops and the two are cross-validated in the test suite.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "build_csr",
    "csr_degrees",
    "segmented_random_pick",
    "segmented_uniform_accept",
]


def build_csr(n: int, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR adjacency ``(indptr, indices)`` from an undirected edge list.

    Parameters
    ----------
    n
        Number of vertices (labelled ``0..n-1``).
    edges
        ``(m, 2)`` integer array of undirected edges.  Self-loops and
        duplicate edges are rejected.

    Returns
    -------
    indptr, indices
        Standard CSR row pointers (length ``n + 1``) and, for each vertex,
        its sorted neighbor list.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")
    if edges.size and np.any(edges[:, 0] == edges[:, 1]):
        raise ValueError("self-loops are not allowed")
    # Symmetrize: each undirected edge contributes two directed arcs.
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if src.size:
        dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
        if np.any(dup):
            raise ValueError("duplicate edges are not allowed")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst


def csr_degrees(indptr: np.ndarray) -> np.ndarray:
    """Vertex degrees from CSR row pointers."""
    return indptr[1:] - indptr[:-1]


def segmented_random_pick(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    *,
    active: np.ndarray | None = None,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Uniform random neighbor choice for every (active) row.

    For each row ``u`` with ``active[u]`` true, picks one entry uniformly at
    random from the row's neighbor list, optionally restricted to neighbors
    ``v`` with ``neighbor_mask[v]`` true and/or to CSR entries ``i`` with
    ``flat_mask[i]`` true (a per-*entry* mask, for eligibility that depends
    on the (row, neighbor) pair rather than the neighbor alone).  Rows that
    are inactive, empty, or whose restriction leaves no eligible neighbor
    get ``-1``.

    Parameters
    ----------
    indptr, indices
        CSR adjacency.
    rng
        Generator used for the per-row uniform draws.
    active
        Boolean array over rows; ``None`` means all rows are active.
    neighbor_mask
        Boolean array over vertices restricting eligible neighbors;
        ``None`` means every neighbor is eligible.
    flat_mask
        Boolean array aligned with ``indices`` restricting eligible CSR
        entries; combined (AND) with ``neighbor_mask`` when both given.

    Returns
    -------
    numpy.ndarray
        ``pick`` of length ``n`` with ``pick[u]`` the chosen neighbor of
        ``u`` or ``-1``.
    """
    n = indptr.shape[0] - 1
    pick = np.full(n, -1, dtype=np.int64)
    if active is None:
        active = np.ones(n, dtype=bool)

    if neighbor_mask is None and flat_mask is None:
        deg = csr_degrees(indptr)
        rows = np.flatnonzero(active & (deg > 0))
        if rows.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        pick[rows] = indices[indptr[rows] + offsets]
        return pick

    # Masked variant: count eligible entries per row via a running sum over
    # the flat eligibility array, then locate the j-th eligible entry of a
    # row by binary search on that running sum.
    if neighbor_mask is not None:
        eligible = neighbor_mask[indices]
        if flat_mask is not None:
            eligible = eligible & flat_mask
    else:
        if flat_mask.shape != indices.shape:
            raise ValueError("flat_mask must align with indices")
        eligible = flat_mask
    csum = np.cumsum(eligible, dtype=np.int64)
    ccount = np.concatenate([[0], csum])  # ccount[i] = eligible among flat[:i]
    row_counts = ccount[indptr[1:]] - ccount[indptr[:-1]]
    rows = np.flatnonzero(active & (row_counts > 0))
    if rows.size == 0:
        return pick
    j = rng.integers(0, row_counts[rows])  # j-th eligible entry within row
    target_rank = ccount[indptr[rows]] + j + 1
    flat_pos = np.searchsorted(csum, target_rank, side="left")
    pick[rows] = indices[flat_pos]
    return pick


def segmented_uniform_accept(
    senders: np.ndarray,
    targets: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform acceptance of one incoming proposal per receiver.

    Given parallel arrays ``senders``/``targets`` (``senders[i]`` proposed to
    ``targets[i]``), selects for each distinct target one proposer uniformly
    at random, matching the model's rule that a receiving node accepts an
    incoming proposal chosen uniformly from the arrivals.

    Returns
    -------
    numpy.ndarray
        ``accepted`` of length ``n`` with ``accepted[v]`` the sender whose
        proposal ``v`` accepted, or ``-1`` if ``v`` received none.
    """
    accepted = np.full(n, -1, dtype=np.int64)
    senders = np.asarray(senders, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if senders.shape != targets.shape:
        raise ValueError("senders and targets must have equal shape")
    if senders.size == 0:
        return accepted
    order = np.argsort(targets, kind="stable")
    s_sorted = senders[order]
    t_sorted = targets[order]
    # Group boundaries: starts[i]..starts[i+1] share one target.
    is_start = np.empty(t_sorted.size, dtype=bool)
    is_start[0] = True
    np.not_equal(t_sorted[1:], t_sorted[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start)
    ends = np.concatenate([starts[1:], [t_sorted.size]])
    sizes = ends - starts
    chosen = starts + rng.integers(0, sizes)
    accepted[t_sorted[starts]] = s_sorted[chosen]
    return accepted
