"""Segmented operations on CSR adjacency structures.

The vectorized round engine (:mod:`repro.core.vectorized`) represents the
current topology as a CSR pair ``(indptr, indices)`` and needs two
primitives executed once per simulated round:

``segmented_random_pick``
    every *sender* chooses one neighbor uniformly at random, optionally
    restricted by a boolean predicate over neighbors (e.g. "neighbors
    currently advertising tag 1");

``segmented_uniform_accept``
    every *receiver* with at least one incoming proposal accepts one
    uniformly at random.

Both are fully vectorized (no per-node Python loop); this is the hot path
identified when profiling large sweeps, per the optimize-the-bottleneck
workflow.  The reference engine implements the same semantics with plain
per-node loops and the two are cross-validated in the test suite.

The batched round engine (:mod:`repro.core.batched`) runs ``T``
independent replicas of one configuration at once and needs the same two
primitives with a leading replica axis:

``batched_random_pick``
    per-replica uniform neighbor choice over a *shared* CSR topology,
    with ``(T, n)``/``(T, nnz)`` masks — one kernel dispatch covers all
    replicas of a round;

``batched_uniform_accept``
    per-(replica, receiver) uniform acceptance over flat proposal arrays
    carrying a replica id — one sort covers all replicas.

Replicas with *distinct* topologies come in two tiers.  Isomorphic churn
(relabelings of one shared base graph — the dominant dynamic workload) is
served by :func:`batched_permuted_pick`, which routes each replica's pick
through its ``(n,)`` relabel permutation against the single base CSR, so
no per-round graph construction or restacking happens at all.  Genuinely
structure-changing replicas are handled by :func:`stack_csr`, which
assembles a block-diagonal CSR so the plain segmented kernels batch over
``T·n`` vertices directly.

Sparse-activity rounds (the large-n path) add two subset primitives:
:func:`gather_rows` (concatenated neighbor lists of a row subset, used
for frontier expansion) and :func:`segmented_random_pick_subset` (uniform
neighbor choice for an explicit row subset, so a round whose active
frontier is small never touches the full ``(n,)``/``(nnz,)`` arrays).

Backend registry
----------------
The hot kernels dispatch through a named backend registry.  ``"numpy"``
(always present) is the pure-NumPy implementation below; ``"numba"`` is
registered at import when the optional :mod:`numba` package is installed
(see :mod:`repro.util._csrops_numba`) and produces bit-identical results.
Selection order at import: the ``REPRO_CSROPS_BACKEND`` environment
variable (``numpy`` / ``numba`` / ``auto``) wins; unset or ``auto`` picks
``numba`` when available and silently falls back to ``numpy`` otherwise.
At runtime, :func:`set_backend` switches backends and the module-level
``backend`` string names the active one.
"""

from __future__ import annotations

import os
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "build_csr",
    "csr_degrees",
    "gather_rows",
    "unique_nodes",
    "segmented_random_pick",
    "segmented_random_pick_subset",
    "segmented_uniform_accept",
    "segmented_uniform_accept_pairs",
    "batched_random_pick",
    "batched_permuted_pick",
    "batched_uniform_accept",
    "invert_permutations",
    "stack_csr",
    "available_backends",
    "get_backend",
    "register_backend",
    "set_backend",
]


def _require_bool(name: str, mask: np.ndarray) -> None:
    if mask.dtype != np.bool_:
        raise TypeError(
            f"{name} must have dtype bool, got {mask.dtype} (a non-boolean "
            "mask would be summed, not tested, by the eligibility count)"
        )


def build_csr(n: int, edges: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR adjacency ``(indptr, indices)`` from an undirected edge list.

    Parameters
    ----------
    n
        Number of vertices (labelled ``0..n-1``).
    edges
        ``(m, 2)`` integer array of undirected edges.  Self-loops and
        duplicate edges are rejected.

    Returns
    -------
    indptr, indices
        Standard CSR row pointers (length ``n + 1``) and, for each vertex,
        its sorted neighbor list.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and (edges.min() < 0 or edges.max() >= n):
        raise ValueError("edge endpoint out of range")
    if edges.size and np.any(edges[:, 0] == edges[:, 1]):
        raise ValueError("self-loops are not allowed")
    # Symmetrize: each undirected edge contributes two directed arcs.
    src = np.concatenate([edges[:, 0], edges[:, 1]])
    dst = np.concatenate([edges[:, 1], edges[:, 0]])
    order = np.lexsort((dst, src))
    src, dst = src[order], dst[order]
    if src.size:
        dup = (src[1:] == src[:-1]) & (dst[1:] == dst[:-1])
        if np.any(dup):
            raise ValueError("duplicate edges are not allowed")
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(indptr, src + 1, 1)
    np.cumsum(indptr, out=indptr)
    return indptr, dst


def csr_degrees(indptr: np.ndarray) -> np.ndarray:
    """Vertex degrees from CSR row pointers."""
    return indptr[1:] - indptr[:-1]


def _subset_flat_positions(
    indptr: np.ndarray, rows: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Flat CSR positions of ``rows``' entries, concatenated in row order.

    Returns ``(pos, starts, ends)`` where ``pos`` indexes ``indices`` and
    ``starts[i]..ends[i]`` delimit row ``i``'s segment inside ``pos``.
    """
    deg = indptr[rows + 1] - indptr[rows]
    ends = np.cumsum(deg)
    starts = ends - deg
    total = int(ends[-1]) if ends.size else 0
    if total == 0:
        return np.empty(0, dtype=np.int64), starts, ends
    pos = (
        np.arange(total, dtype=np.int64)
        - np.repeat(starts, deg)
        + np.repeat(indptr[rows], deg)
    )
    return pos, starts, ends


def gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenated CSR entries (neighbor lists) of ``rows``, in row order.

    The frontier-expansion primitive of the sparse-activity path: one
    vectorized gather replaces a per-row Python loop of slices.  Rows may
    repeat; empty rows contribute nothing.
    """
    rows = np.asarray(rows, dtype=np.int64)
    if rows.size == 0:
        return np.empty(0, dtype=np.int64)
    pos, _, _ = _subset_flat_positions(indptr, rows)
    return indices[pos]


def unique_nodes(ids: np.ndarray) -> np.ndarray:
    """Sorted distinct values of an integer id array.

    Result-identical to :func:`numpy.unique` but via an explicit
    sort-and-diff — NumPy ≥ 2.3 routes ``unique`` through a hash table
    that is an order of magnitude slower at the few-thousand-element
    sizes frontier rounds produce every round.
    """
    if ids.size <= 1:
        return ids.astype(np.int64, copy=True).reshape(-1)
    a = np.sort(ids.reshape(-1))
    keep = np.empty(a.size, dtype=bool)
    keep[0] = True
    np.not_equal(a[1:], a[:-1], out=keep[1:])
    return a[keep]


# ---------------------------------------------------------------------------
# NumPy backend kernels
# ---------------------------------------------------------------------------


def _segmented_random_pick_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    *,
    active: np.ndarray | None = None,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    n = indptr.shape[0] - 1
    pick = np.full(n, -1, dtype=np.int64)
    if active is None:
        active = np.ones(n, dtype=bool)
    else:
        _require_bool("active", active)

    if neighbor_mask is None and flat_mask is None:
        deg = csr_degrees(indptr)
        rows = np.flatnonzero(active & (deg > 0))
        if rows.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        pick[rows] = indices[indptr[rows] + offsets]
        return pick

    # Masked variant: count eligible entries per row via a running sum over
    # the flat eligibility array, then locate the j-th eligible entry of a
    # row by binary search on that running sum.  ``csum[i - 1]`` is the
    # number of eligible entries among ``flat[:i]`` (0 for ``i = 0``), so
    # per-row counts index ``csum`` directly — no shifted copy is built.
    if neighbor_mask is not None:
        _require_bool("neighbor_mask", neighbor_mask)
        eligible = neighbor_mask[indices]
        if flat_mask is not None:
            _require_bool("flat_mask", flat_mask)
            eligible = eligible & flat_mask
    else:
        if flat_mask.shape != indices.shape:
            raise ValueError("flat_mask must align with indices")
        _require_bool("flat_mask", flat_mask)
        eligible = flat_mask
    if eligible.size == 0:
        return pick
    csum = np.cumsum(eligible, dtype=np.int64)
    starts, ends = indptr[:-1], indptr[1:]
    cnt_start = np.where(starts > 0, csum[starts - 1], 0)
    cnt_end = np.where(ends > 0, csum[ends - 1], 0)
    rows = np.flatnonzero(active & (cnt_end > cnt_start))
    if rows.size == 0:
        return pick
    j = rng.integers(0, (cnt_end - cnt_start)[rows])  # j-th eligible entry
    target_rank = cnt_start[rows] + j + 1
    flat_pos = np.searchsorted(csum, target_rank, side="left")
    pick[rows] = indices[flat_pos]
    return pick


def _segmented_random_pick_subset_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    vertices: np.ndarray,
    *,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.size
    pick = np.full(k, -1, dtype=np.int64)
    if k == 0:
        return pick

    if neighbor_mask is None and flat_mask is None:
        deg = indptr[vertices + 1] - indptr[vertices]
        rows = np.flatnonzero(deg > 0)
        if rows.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        pick[rows] = indices[indptr[vertices[rows]] + offsets]
        return pick

    # Masked: gather the selected rows' CSR segments into one flat run,
    # then reuse the dense masked strategy (running sum + binary search)
    # on that O(sum deg(vertices)) run instead of the full nnz array.
    pos, starts, ends = _subset_flat_positions(indptr, vertices)
    if pos.size == 0:
        return pick
    nbrs = indices[pos]
    if neighbor_mask is not None:
        _require_bool("neighbor_mask", neighbor_mask)
        eligible = neighbor_mask[nbrs]
        if flat_mask is not None:
            _require_bool("flat_mask", flat_mask)
            eligible = eligible & flat_mask[pos]
    else:
        if flat_mask.shape != indices.shape:
            raise ValueError("flat_mask must align with indices")
        _require_bool("flat_mask", flat_mask)
        eligible = flat_mask[pos]
    csum = np.cumsum(eligible, dtype=np.int64)
    cnt_start = np.where(starts > 0, csum[starts - 1], 0)
    cnt_end = np.where(ends > 0, csum[ends - 1], 0)
    rows = np.flatnonzero(cnt_end > cnt_start)
    if rows.size == 0:
        return pick
    j = rng.integers(0, (cnt_end - cnt_start)[rows])
    target_rank = cnt_start[rows] + j + 1
    loc = np.searchsorted(csum, target_rank, side="left")
    pick[rows] = nbrs[loc]
    return pick


def _segmented_uniform_accept_pairs_numpy(
    senders: np.ndarray,
    targets: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    senders = np.asarray(senders, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if senders.shape != targets.shape:
        raise ValueError("senders and targets must have equal shape")
    if senders.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Stable-by-target order via a unique composite key: quicksort on
    # distinct keys yields exactly the (target, input-position) order a
    # stable sort would, at a fraction of the cost of kind="stable" on
    # the raw (highly duplicated) targets.
    m = targets.size
    order = np.argsort(targets * m + np.arange(m, dtype=np.int64))
    s_sorted = senders[order]
    t_sorted = targets[order]
    # Group boundaries: starts[i]..starts[i+1] share one target.
    is_start = np.empty(t_sorted.size, dtype=bool)
    is_start[0] = True
    np.not_equal(t_sorted[1:], t_sorted[:-1], out=is_start[1:])
    starts = np.flatnonzero(is_start)
    ends = np.concatenate([starts[1:], [t_sorted.size]])
    sizes = ends - starts
    # floor(u * size), u ~ U[0, 1): uniform over each group up to an
    # O(size / 2^53) rounding bias, at about half the cost of a
    # per-element bounded integer draw.
    chosen = starts + (rng.random(starts.size) * sizes).astype(np.int64)
    return t_sorted[starts], s_sorted[chosen]


def _batched_random_pick_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    active: np.ndarray,
    *,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    _require_bool("active", active)
    if active.ndim != 2:
        raise ValueError("active must have shape (T, n)")
    T, n = active.shape
    if indptr.shape[0] != n + 1:
        raise ValueError("active rows must match the CSR vertex count")
    nnz = indices.shape[0]
    pick = np.full((T, n), -1, dtype=np.int64)

    if neighbor_mask is None and flat_mask is None:
        deg = csr_degrees(indptr)
        rep, rows = np.nonzero(active & (deg > 0)[None, :])
        if rep.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        pick[rep, rows] = indices[indptr[rows] + offsets]
        return pick

    if neighbor_mask is not None:
        _require_bool("neighbor_mask", neighbor_mask)
        if neighbor_mask.shape != (T, n):
            raise ValueError("neighbor_mask must have shape (T, n)")
        eligible = neighbor_mask[:, indices]
        if flat_mask is not None:
            _require_bool("flat_mask", flat_mask)
            eligible = eligible & flat_mask
    else:
        if flat_mask.shape != (T, nnz):
            raise ValueError("flat_mask must have shape (T, nnz)")
        _require_bool("flat_mask", flat_mask)
        eligible = flat_mask
    if eligible.size == 0:
        return pick

    # One running sum over the row-major (T, nnz) eligibility treats the
    # batch as a single tiled CSR of T*n rows: replica t's row u spans
    # flat positions t*nnz + indptr[u] .. t*nnz + indptr[u+1].
    csum = np.cumsum(eligible.reshape(T * nnz), dtype=np.int64)
    rep_off = (np.arange(T, dtype=np.int64) * nnz)[:, None]
    starts = (indptr[:-1][None, :] + rep_off).reshape(T * n)
    ends = (indptr[1:][None, :] + rep_off).reshape(T * n)
    cnt_start = np.where(starts > 0, csum[starts - 1], 0)
    cnt_end = np.where(ends > 0, csum[ends - 1], 0)
    rows = np.flatnonzero(active.reshape(T * n) & (cnt_end > cnt_start))
    if rows.size == 0:
        return pick
    j = rng.integers(0, (cnt_end - cnt_start)[rows])
    target_rank = cnt_start[rows] + j + 1
    flat_pos = np.searchsorted(csum, target_rank, side="left")
    pick.reshape(T * n)[rows] = indices[flat_pos % nnz]
    return pick


def _batched_permuted_pick_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    perm: np.ndarray,
    active: np.ndarray,
    *,
    neighbor_mask: np.ndarray | None = None,
    perm_inv: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    _require_bool("active", active)
    if active.ndim != 2:
        raise ValueError("active must have shape (T, n)")
    T, n = active.shape
    if perm.shape != (T, n):
        raise ValueError("perm must have shape (T, n)")
    if indptr.shape[0] != n + 1:
        raise ValueError("active rows must match the CSR vertex count")
    p_flat = perm.reshape(T * n)

    if neighbor_mask is None:
        if perm_inv is None:
            perm_inv = invert_permutations(perm)
        # Unmasked: gather senders to base vertices, draw one neighbor
        # offset each against the base degrees, map the pick forward.
        sflat = np.flatnonzero(active)
        rows = sflat % n
        base_off = sflat - rows
        u = perm_inv.reshape(T * n)[sflat]
        d = (indptr[u + 1] - indptr[u])
        ok = d > 0
        if not ok.all():
            sflat, base_off, u, d = sflat[ok], base_off[ok], u[ok], d[ok]
        if sflat.size == 0:
            return sflat, sflat
        # floor(u * d) for u ~ U[0, 1): uniform over [0, d) up to an
        # O(d / 2^53) rounding bias — immaterial here, and roughly half
        # the cost of a per-element bounded integer draw.
        offsets = (rng.random(d.size) * d).astype(np.int64)
        w = indices[indptr[u] + offsets]
        return sflat, base_off + p_flat[base_off + w]

    # Masked: transport both masks to base coordinates
    # (mask_base[t, u] = mask[t, perm[t, u]]), pick on the base CSR, then
    # map both endpoints forward.  The inner pick dispatches through the
    # registry, so a compiled backend accelerates this path too.
    active_base = np.take_along_axis(active, perm, axis=1)
    nb_base = np.take_along_axis(neighbor_mask, perm, axis=1)
    picks = batched_random_pick(
        indptr, indices, rng, active_base, neighbor_mask=nb_base
    )
    pf = picks.reshape(T * n)
    sel = np.flatnonzero(pf >= 0)  # flat *base* ids t*n + u
    rows = sel % n
    base_off = sel - rows
    sflat = base_off + p_flat[sel]
    tflat = base_off + p_flat[base_off + pf[sel]]
    return sflat, tflat


# ---------------------------------------------------------------------------
# Backend registry and public dispatchers
# ---------------------------------------------------------------------------

#: name of the active backend; switch with :func:`set_backend`.
backend: str = "numpy"

_DISPATCHED = (
    "segmented_random_pick",
    "segmented_random_pick_subset",
    "segmented_uniform_accept_pairs",
    "batched_random_pick",
    "batched_permuted_pick",
)

_BACKENDS: dict[str, dict[str, Callable]] = {}


def register_backend(name: str, table: dict[str, Callable]) -> None:
    """Register (or replace) a kernel backend.

    ``table`` maps kernel names (a subset of the dispatched kernels) to
    implementations with the public signatures; kernels a backend omits
    fall back to the ``numpy`` implementations.
    """
    unknown = set(table) - set(_DISPATCHED)
    if unknown:
        raise ValueError(f"unknown kernel name(s) in backend table: {sorted(unknown)}")
    _BACKENDS[name] = dict(table)


def available_backends() -> list[str]:
    """Names of all registered backends."""
    return sorted(_BACKENDS)


def get_backend() -> str:
    """Name of the active backend."""
    return backend


def set_backend(name: str) -> None:
    """Switch the active kernel backend (``"numpy"`` is always available)."""
    global backend
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown csrops backend {name!r}; available: {available_backends()}"
        )
    backend = name


def _impl(fname: str) -> Callable:
    table = _BACKENDS.get(backend)
    if table is None:
        raise ValueError(
            f"active csrops backend {backend!r} is not registered; "
            f"available: {available_backends()}"
        )
    fn = table.get(fname)
    return fn if fn is not None else _BACKENDS["numpy"][fname]


def segmented_random_pick(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    *,
    active: np.ndarray | None = None,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Uniform random neighbor choice for every (active) row.

    For each row ``u`` with ``active[u]`` true, picks one entry uniformly at
    random from the row's neighbor list, optionally restricted to neighbors
    ``v`` with ``neighbor_mask[v]`` true and/or to CSR entries ``i`` with
    ``flat_mask[i]`` true (a per-*entry* mask, for eligibility that depends
    on the (row, neighbor) pair rather than the neighbor alone).  Rows that
    are inactive, empty, or whose restriction leaves no eligible neighbor
    get ``-1``.

    Parameters
    ----------
    indptr, indices
        CSR adjacency.
    rng
        Generator used for the per-row uniform draws.
    active
        Boolean array over rows; ``None`` means all rows are active.
    neighbor_mask
        Boolean array over vertices restricting eligible neighbors;
        ``None`` means every neighbor is eligible.
    flat_mask
        Boolean array aligned with ``indices`` restricting eligible CSR
        entries; combined (AND) with ``neighbor_mask`` when both given.

    Returns
    -------
    numpy.ndarray
        ``pick`` of length ``n`` with ``pick[u]`` the chosen neighbor of
        ``u`` or ``-1``.
    """
    return _impl("segmented_random_pick")(
        indptr, indices, rng,
        active=active, neighbor_mask=neighbor_mask, flat_mask=flat_mask,
    )


def segmented_random_pick_subset(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    vertices: np.ndarray,
    *,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Uniform random neighbor choice for an explicit row subset.

    Sparse-frontier form of :func:`segmented_random_pick`: only the rows
    listed in ``vertices`` are touched, so the cost is
    ``O(sum deg(vertices))`` instead of ``O(nnz)``.  Masks keep their
    global shapes (``neighbor_mask`` over vertices, ``flat_mask`` aligned
    with ``indices``); there is no ``active`` mask — callers pass exactly
    the rows that should pick.

    Returns
    -------
    numpy.ndarray
        ``pick`` aligned with ``vertices``: the chosen neighbor of
        ``vertices[i]`` or ``-1`` when no neighbor is eligible.
    """
    return _impl("segmented_random_pick_subset")(
        indptr, indices, rng, vertices,
        neighbor_mask=neighbor_mask, flat_mask=flat_mask,
    )


def segmented_uniform_accept(
    senders: np.ndarray,
    targets: np.ndarray,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform acceptance of one incoming proposal per receiver.

    Given parallel arrays ``senders``/``targets`` (``senders[i]`` proposed to
    ``targets[i]``), selects for each distinct target one proposer uniformly
    at random, matching the model's rule that a receiving node accepts an
    incoming proposal chosen uniformly from the arrivals.

    Returns
    -------
    numpy.ndarray
        ``accepted`` of length ``n`` with ``accepted[v]`` the sender whose
        proposal ``v`` accepted, or ``-1`` if ``v`` received none.
    """
    accepted = np.full(n, -1, dtype=np.int64)
    receivers, winners = segmented_uniform_accept_pairs(senders, targets, rng)
    accepted[receivers] = winners
    return accepted


def segmented_uniform_accept_pairs(
    senders: np.ndarray,
    targets: np.ndarray,
    rng: np.random.Generator,
) -> tuple[np.ndarray, np.ndarray]:
    """Compact form of :func:`segmented_uniform_accept`.

    Same acceptance rule and identical RNG consumption, but instead of a
    dense length-``n`` array it returns the parallel pair
    ``(receivers, winners)``: each distinct target exactly once, with the
    sender whose proposal it accepted.  The engines' hot path uses this
    form to avoid materializing (and re-scanning) a dense per-vertex
    array when only the established connections matter.
    """
    return _impl("segmented_uniform_accept_pairs")(senders, targets, rng)


def batched_random_pick(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    active: np.ndarray,
    *,
    neighbor_mask: np.ndarray | None = None,
    flat_mask: np.ndarray | None = None,
) -> np.ndarray:
    """Per-replica uniform neighbor choice over one *shared* CSR topology.

    Semantically equivalent to calling :func:`segmented_random_pick` once
    per replica with that replica's masks, but all ``T`` replicas are
    served by a single cumulative sum and a single binary search — the
    per-round NumPy dispatch overhead is paid once instead of ``T`` times.

    Parameters
    ----------
    indptr, indices
        CSR adjacency shared by every replica (static-topology runs).
    rng
        Generator for the per-(replica, row) uniform draws.
    active
        ``(T, n)`` boolean sender mask (required: it fixes the replica
        count ``T``).
    neighbor_mask
        Optional ``(T, n)`` boolean per-replica vertex eligibility.
    flat_mask
        Optional ``(T, nnz)`` boolean per-replica CSR-entry eligibility,
        combined (AND) with ``neighbor_mask`` when both given.

    Returns
    -------
    numpy.ndarray
        ``(T, n)`` picks; ``pick[t, u]`` is the chosen neighbor of ``u``
        in replica ``t`` or ``-1``.
    """
    return _impl("batched_random_pick")(
        indptr, indices, rng, active,
        neighbor_mask=neighbor_mask, flat_mask=flat_mask,
    )


def batched_permuted_pick(
    indptr: np.ndarray,
    indices: np.ndarray,
    rng: np.random.Generator,
    perm: np.ndarray,
    active: np.ndarray,
    *,
    neighbor_mask: np.ndarray | None = None,
    perm_inv: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-replica uniform neighbor pick through per-replica *relabelings*.

    Replica ``t``'s round topology is the shared base CSR with vertex
    ``u`` renamed ``perm[t, u]`` (``Graph.relabel`` semantics).  This is
    the isomorphic-churn fast path: semantically identical to relabeling
    the base graph per replica and running :func:`segmented_random_pick`
    on each (or on their stacked CSR), but no relabeled graph, re-sorted
    CSR, or block-diagonal stack is ever built — sender and eligibility
    masks are gathered back to base coordinates, the pick runs against
    the one base CSR, and the chosen neighbors are mapped forward.

    Relabeling is a bijection on each vertex's neighbor set, so a uniform
    choice among eligible base neighbors *is* a uniform choice among
    eligible current-label neighbors.

    Parameters
    ----------
    indptr, indices
        Base CSR adjacency shared by every replica.
    rng
        Generator for the per-sender uniform draws.
    perm
        ``(T, n)`` relabel permutations; ``perm[t, u]`` is base vertex
        ``u``'s current label in replica ``t``.
    active
        ``(T, n)`` boolean sender mask in *current* labels.
    neighbor_mask
        Optional ``(T, n)`` per-replica vertex eligibility, in current
        labels.
    perm_inv
        Optional precomputed :func:`invert_permutations` of ``perm``
        (callers that hold ``perm`` fixed across an epoch cache it).

    Returns
    -------
    (senders_flat, targets_flat)
        Compact parallel flat arrays in current labels
        (``flat = t*n + v``): each sender that found an eligible neighbor,
        with its pick.
    """
    return _impl("batched_permuted_pick")(
        indptr, indices, rng, perm, active,
        neighbor_mask=neighbor_mask, perm_inv=perm_inv,
    )


def invert_permutations(perm: np.ndarray) -> np.ndarray:
    """Row-wise inverse of a ``(T, n)`` batch of permutations.

    ``inv[t, perm[t, u]] == u`` — one scatter for the whole batch.
    """
    inv = np.empty_like(perm)
    np.put_along_axis(
        inv, perm, np.arange(perm.shape[1], dtype=perm.dtype)[None, :], axis=1
    )
    return inv


def batched_uniform_accept(
    rep: np.ndarray,
    senders: np.ndarray,
    targets: np.ndarray,
    T: int,
    n: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Uniform acceptance of one incoming proposal per (replica, receiver).

    Proposals across all replicas arrive as parallel flat arrays
    (``senders[i]`` proposed to ``targets[i]`` inside replica ``rep[i]``);
    a single stable sort on the combined ``(replica, target)`` key groups
    every replica's arrivals at once — equivalent to ``T`` independent
    :func:`segmented_uniform_accept` calls, at one dispatch cost.

    Returns
    -------
    numpy.ndarray
        ``(T, n)`` with ``accepted[t, v]`` the sender whose proposal ``v``
        accepted in replica ``t``, or ``-1``.
    """
    rep = np.asarray(rep, dtype=np.int64)
    senders = np.asarray(senders, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if not (rep.shape == senders.shape == targets.shape):
        raise ValueError("rep, senders, and targets must have equal shape")
    if rep.size and (targets.min() < 0 or targets.max() >= n):
        raise ValueError("target out of range")
    if rep.size and (rep.min() < 0 or rep.max() >= T):
        raise ValueError("replica id out of range")
    flat = segmented_uniform_accept(senders, rep * n + targets, T * n, rng)
    return flat.reshape(T, n)


def stack_csr(
    csrs: Sequence[tuple[np.ndarray, np.ndarray]], n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Block-diagonal CSR of ``T`` replica topologies on ``n`` vertices each.

    Replica ``t``'s vertex ``v`` becomes global vertex ``t*n + v``; no
    edges cross replicas.  The plain segmented kernels applied to the
    stacked CSR then batch a round over all replicas even when their
    topologies differ (dynamic/adversarial graphs).
    """
    T = len(csrs)
    if T == 0:
        raise ValueError("need at least one replica CSR")
    nnz_off = np.zeros(T + 1, dtype=np.int64)
    for t, (ip, _) in enumerate(csrs):
        if ip.shape[0] != n + 1:
            raise ValueError("every replica CSR must cover n vertices")
        nnz_off[t + 1] = nnz_off[t] + ip[-1]
    indptr = np.empty(T * n + 1, dtype=np.int64)
    indptr[0] = 0
    indices = np.empty(nnz_off[-1], dtype=np.int64)
    for t, (ip, ind) in enumerate(csrs):
        indptr[t * n + 1 : (t + 1) * n + 1] = ip[1:] + nnz_off[t]
        indices[nnz_off[t] : nnz_off[t + 1]] = ind + t * n
    return indptr, indices


# ---------------------------------------------------------------------------
# Backend registration and import-time selection
# ---------------------------------------------------------------------------

register_backend(
    "numpy",
    {
        "segmented_random_pick": _segmented_random_pick_numpy,
        "segmented_random_pick_subset": _segmented_random_pick_subset_numpy,
        "segmented_uniform_accept_pairs": _segmented_uniform_accept_pairs_numpy,
        "batched_random_pick": _batched_random_pick_numpy,
        "batched_permuted_pick": _batched_permuted_pick_numpy,
    },
)


def _init_backend_from_env() -> None:
    choice = os.environ.get("REPRO_CSROPS_BACKEND", "auto").strip().lower() or "auto"
    if choice not in ("auto", "numpy", "numba"):
        raise ValueError(
            f"REPRO_CSROPS_BACKEND={choice!r} is not one of auto/numpy/numba"
        )
    if choice in ("auto", "numba"):
        try:
            from repro.util import _csrops_numba
        except ImportError:
            _csrops_numba = None
        if _csrops_numba is not None and _csrops_numba.HAVE_NUMBA:
            register_backend("numba", _csrops_numba.make_table())
            set_backend("numba")
            return
        if choice == "numba":
            raise ImportError(
                "REPRO_CSROPS_BACKEND=numba requires the optional numba "
                "package (pip install 'repro[numba]')"
            )
    set_backend("numpy")


_init_backend_from_env()
