"""Deterministic random-number management.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator`.  Reproducibility across trials, engines,
and processes is achieved by deriving child seeds from a root seed and a
string *label* using :class:`numpy.random.SeedSequence` so that:

* the same ``(seed, label)`` pair always yields the same stream;
* distinct labels yield statistically independent streams;
* per-trial and per-node streams can be derived without coordination.
"""

from __future__ import annotations

import zlib
from typing import Iterable, Sequence

import numpy as np

__all__ = ["derive_seed", "make_rng", "spawn_rngs", "label_entropy"]


def label_entropy(label: str) -> int:
    """Map a string label to a stable 32-bit integer.

    CRC32 is used rather than ``hash()`` because Python's string hashing is
    salted per process and would destroy cross-run reproducibility.
    """
    return zlib.crc32(label.encode("utf-8")) & 0xFFFFFFFF


def derive_seed(seed: int | None, *labels: str | int) -> np.random.SeedSequence:
    """Derive a :class:`numpy.random.SeedSequence` from a root seed and labels.

    Parameters
    ----------
    seed
        Root seed.  ``None`` produces a nondeterministic sequence (fresh OS
        entropy); any integer produces a deterministic one.
    labels
        Additional context (e.g. ``"trial", 17``) mixed into the spawn key.
        String labels are converted with :func:`label_entropy`.
    """
    key = tuple(
        label_entropy(lab) if isinstance(lab, str) else int(lab) for lab in labels
    )
    if seed is None:
        return np.random.SeedSequence(spawn_key=key)
    return np.random.SeedSequence(entropy=int(seed), spawn_key=key)


def make_rng(seed: int | None, *labels: str | int) -> np.random.Generator:
    """Create a :class:`numpy.random.Generator` for ``(seed, *labels)``."""
    return np.random.default_rng(derive_seed(seed, *labels))


def spawn_rngs(
    seed: int | None, count: int, *labels: str | int
) -> list[np.random.Generator]:
    """Create ``count`` independent generators under a common label context."""
    ss = derive_seed(seed, *labels)
    return [np.random.default_rng(child) for child in ss.spawn(count)]
