"""Shared-memory graph plane: zero-copy CSR publication across processes.

Campaign workers used to receive every graph by pickling its CSR arrays
through a pipe — one full copy per task, rebuilt in every worker, for
topologies that are bit-identical across cells (the sweep grids reuse the
same ``(family, n, seed)`` base graphs over and over).  This module gives
the harness a *content-addressed shared-memory store* instead:

* :class:`SharedGraphStore` publishes a graph's ``indptr``/``indices``/
  ``edges`` arrays (and arbitrary ``int64`` arrays, e.g. the permutation
  blocks of :class:`~repro.graphs.dynamic.PeriodicRelabelDynamicGraph`)
  as named segments under ``/dev/shm``; any process maps them back with
  ``mmap`` — **zero copy**, read-only, one physical page set shared by
  every worker.
* Segments are **content/key addressed**: the graph-family memo keys a
  segment by ``(family, args, seed)`` and pickled graphs by a content
  hash, so a base CSR shared by many cells is built exactly once per
  campaign, no matter which worker gets there first (publication is an
  atomic ``rename``, so racing builders converge on identical bytes).
* While a store is *active* (:func:`use_graph_store`),
  :meth:`repro.graphs.static.Graph.__reduce__` pickles graphs as segment
  references and the :mod:`repro.graphs.families` builders consult the
  memo — no call-site changes anywhere in the harness.

Lifecycle: the campaign parent creates the store (``create()``), workers
attach by prefix (``store_for()``), and the parent removes every segment
in a ``finally`` block (``cleanup()``).  Each published segment is also
registered with :mod:`multiprocessing.resource_tracker`, so even a
SIGKILL'd campaign leaks nothing: the tracker unlinks the segments when
the process tree dies.  Workers never own segments — a SIGKILL'd worker
only drops its private mappings.

Everything here degrades gracefully: on platforms without ``/dev/shm``
(or when publication fails mid-campaign) graphs fall back to plain
pickling and builders to plain construction, with identical results.
"""

from __future__ import annotations

import contextlib
import contextvars
import hashlib
import mmap
import os
import secrets
from pathlib import Path
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (static imports us)
    from repro.graphs.static import Graph

__all__ = [
    "SharedGraphStore",
    "active_graph_store",
    "shared_memory_supported",
    "store_for",
    "use_graph_store",
]

#: Where POSIX shared-memory segments live as plain files (Linux tmpfs).
SHM_DIR = Path("/dev/shm")

#: Default cap on segments one store publishes (a runaway per-epoch
#: sampler must not fill /dev/shm; past the cap, builds still succeed but
#: are no longer shared).
DEFAULT_MAX_SEGMENTS = 512


def shared_memory_supported() -> bool:
    """True when the /dev/shm plane is available on this machine."""
    return SHM_DIR.is_dir() and os.access(SHM_DIR, os.W_OK)


_ACTIVE: contextvars.ContextVar["SharedGraphStore | None"] = contextvars.ContextVar(
    "repro_graph_store", default=None
)


@contextlib.contextmanager
def use_graph_store(store: "SharedGraphStore | None"):
    """Activate ``store`` for the block: graph pickles become segment
    references and family builders memoize through it (``None``
    deactivates)."""
    token = _ACTIVE.set(store)
    try:
        yield store
    finally:
        _ACTIVE.reset(token)


def active_graph_store() -> "SharedGraphStore | None":
    """The store installed by :func:`use_graph_store`, if any."""
    return _ACTIVE.get()


# Per-process attach-mode stores, so unpickling a segment reference works
# in any process without an explicitly activated store.
_PROCESS_STORES: dict[str, "SharedGraphStore"] = {}


def store_for(prefix: str) -> "SharedGraphStore":
    """The process-wide attach-mode store for ``prefix`` (created on first
    use; workers call this with the prefix the campaign parent hands them)."""
    active = _ACTIVE.get()
    if active is not None and active.prefix == prefix:
        return active
    store = _PROCESS_STORES.get(prefix)
    if store is None:
        store = SharedGraphStore(prefix, owner=False)
        _PROCESS_STORES[prefix] = store
    return store


# ---------------------------------------------------------------------------
# Resource-tracker safety net
# ---------------------------------------------------------------------------


def _tracker_register(name: str) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.register("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker unavailable
        pass


def _tracker_unregister(name: str) -> None:
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister("/" + name, "shared_memory")
    except Exception:  # pragma: no cover - tracker unavailable
        pass


def _tracker_ensure_running() -> None:
    """Start the resource tracker *before* pool workers fork, so every
    process in the campaign tree shares one tracker (a worker that
    publishes first must not spawn its own)."""
    try:  # pragma: no cover - trivial delegation
        from multiprocessing import resource_tracker

        resource_tracker.ensure_running()
    except Exception:  # pragma: no cover - tracker unavailable
        pass


# ---------------------------------------------------------------------------
# Segment format: a flat int64 stream
# ---------------------------------------------------------------------------
#
#   [n_arrays, (ndim, dim0..dim_{ndim-1})*, payload0, payload1, ...]
#
# Every array the plane ships is int64 (CSR indptr/indices, edge lists,
# permutation blocks), so one dtype keeps mapping a single frombuffer.


def _pack_arrays(arrays: list[np.ndarray]) -> bytes:
    header: list[int] = [len(arrays)]
    for a in arrays:
        header.append(a.ndim)
        header.extend(int(d) for d in a.shape)
    parts = [np.asarray(header, dtype=np.int64).tobytes()]
    for a in arrays:
        if a.dtype != np.int64:
            raise TypeError(f"shared segments carry int64 arrays, got {a.dtype}")
        parts.append(np.ascontiguousarray(a).tobytes())
    return b"".join(parts)


def _unpack_arrays(flat: np.ndarray) -> list[np.ndarray]:
    count = int(flat[0])
    pos = 1
    shapes: list[tuple[int, ...]] = []
    for _ in range(count):
        ndim = int(flat[pos])
        shapes.append(tuple(int(d) for d in flat[pos + 1 : pos + 1 + ndim]))
        pos += 1 + ndim
    arrays: list[np.ndarray] = []
    for shape in shapes:
        size = int(np.prod(shape)) if shape else 1
        arrays.append(flat[pos : pos + size].reshape(shape))
        pos += size
    if pos != flat.size:
        raise ValueError("shared segment size does not match its header")
    return arrays


class SharedGraphStore:
    """Content-addressed shared-memory store for graphs and int64 arrays.

    Parameters
    ----------
    prefix
        Segment-name prefix; every file the store touches is
        ``/dev/shm/<prefix>-...``.  All processes of one campaign share a
        prefix.
    owner
        Owners (the campaign parent) unlink every segment on
        :meth:`cleanup`; attach-mode stores never delete anything.
    max_segments
        Per-process cap on *published* segments (reads are unbounded).
    """

    def __init__(
        self,
        prefix: str,
        *,
        owner: bool = False,
        max_segments: int = DEFAULT_MAX_SEGMENTS,
    ):
        self.prefix = prefix
        self.owner = owner
        self.max_segments = int(max_segments)
        #: family-memo / content hits and misses in this process.
        self.hits = 0
        self.misses = 0
        self._published = 0
        self._graphs: dict[str, "Graph"] = {}
        self._arrays: dict[str, np.ndarray] = {}
        self._graph_segment: dict[int, str] = {}  # id(graph) -> segment name

    @classmethod
    def create(cls, prefix: str | None = None, **kwargs) -> "SharedGraphStore":
        """Create an owning store with a fresh campaign-unique prefix."""
        if not shared_memory_supported():
            raise OSError(f"shared-memory plane unavailable ({SHM_DIR} missing)")
        if prefix is None:
            prefix = f"repro-shm-{os.getpid()}-{secrets.token_hex(4)}"
        _tracker_ensure_running()
        return cls(prefix, owner=True, **kwargs)

    # -- low-level segments ------------------------------------------------

    def _path(self, name: str) -> Path:
        return SHM_DIR / name

    def _publish_bytes(self, name: str, payload: bytes) -> bool:
        """Atomically publish ``payload`` under ``name``.

        Concurrent publishers of the same name converge: both build
        identical bytes (the name is content/key derived), the rename is
        atomic, and earlier mappings keep their inode.  Returns False when
        publication was skipped (cap reached or filesystem refused).
        """
        final = self._path(name)
        if final.exists():
            return True
        if self._published >= self.max_segments:
            return False
        tmp = self._path(f"{name}.tmp.{os.getpid()}")
        try:
            with open(tmp, "xb") as fh:
                fh.write(payload)
            os.rename(tmp, final)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink()
            return final.exists()
        _tracker_register(name)
        self._published += 1
        return True

    def _map_segment(self, name: str) -> list[np.ndarray]:
        """Map a segment read-only; returned arrays are zero-copy views."""
        with open(self._path(name), "rb") as fh:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        flat = np.frombuffer(mapped, dtype=np.int64)
        return _unpack_arrays(flat)

    def segment_names(self) -> list[str]:
        """All live segments under this store's prefix (sorted)."""
        return sorted(p.name for p in SHM_DIR.glob(self.prefix + "-*"))

    # -- graphs ------------------------------------------------------------

    def _remember(self, name: str, graph: "Graph") -> None:
        # Strong refs pin ids, so the id-keyed reverse map stays valid.
        self._graphs[name] = graph
        self._graph_segment[id(graph)] = name

    def publish_graph(self, graph: "Graph") -> str | None:
        """Publish ``graph`` (content-addressed); returns its segment name,
        or ``None`` when the plane could not take it (callers fall back to
        plain pickling)."""
        name = self._graph_segment.get(id(graph))
        if name is not None and self._graphs.get(name) is graph:
            return name
        digest = hashlib.sha256()
        digest.update(str(graph.n).encode())
        digest.update(graph.edges.tobytes())
        name = f"{self.prefix}-g-{digest.hexdigest()[:24]}"
        if not self._publish_bytes(name, self._pack_graph(graph)):
            return None
        self._remember(name, graph)
        return name

    @staticmethod
    def _pack_graph(graph: "Graph") -> bytes:
        return _pack_arrays(
            [
                np.asarray([graph.n], dtype=np.int64),
                graph.indptr,
                graph.indices,
                graph.edges,
            ]
        )

    def load_graph(self, name: str) -> "Graph":
        """Reconstruct a graph from its segment, mapping the CSR zero-copy
        (cached per process, so repeated loads share one object)."""
        graph = self._graphs.get(name)
        if graph is None:
            from repro.graphs.static import Graph

            meta, indptr, indices, edges = self._map_segment(name)
            graph = Graph._from_csr(int(meta[0]), indptr, indices, edges)
            self._remember(name, graph)
        return graph

    # -- family memo -------------------------------------------------------

    def _key_name(self, kind: str, key: tuple) -> str:
        digest = hashlib.sha256(repr(key).encode()).hexdigest()[:24]
        return f"{self.prefix}-{kind}-{digest}"

    def get_or_build(self, key: tuple, builder: Callable[[], "Graph"]) -> "Graph":
        """Return the graph for ``key``, building it at most once per
        campaign: in-process cache first, then the shared segment any
        worker may have published, then ``builder()`` (publishing the
        result for everyone else)."""
        name = self._key_name("f", key)
        graph = self._graphs.get(name)
        if graph is not None:
            self.hits += 1
            return graph
        if self._path(name).exists():
            try:
                graph = self.load_graph(name)
            except (OSError, ValueError):
                graph = None  # racing publisher or torn segment: rebuild
            if graph is not None:
                self.hits += 1
                return graph
        graph = builder()
        self.misses += 1
        if self._publish_bytes(name, self._pack_graph(graph)):
            self._remember(name, graph)
        return graph

    # -- raw arrays (permutation blocks) ------------------------------------

    def publish_array(self, key: tuple, array: np.ndarray) -> str | None:
        """Publish one int64 array under a key; returns its segment name
        (``None`` when the plane could not take it)."""
        name = self._key_name("a", key)
        if array.dtype != np.int64:
            return None
        if not self._publish_bytes(name, _pack_arrays([array])):
            return None
        self._arrays.setdefault(name, array)
        return name

    def load_array(self, name: str) -> np.ndarray:
        array = self._arrays.get(name)
        if array is None:
            (array,) = self._map_segment(name)
            self._arrays[name] = array
        return array

    # -- lifecycle ----------------------------------------------------------

    def cleanup(self) -> int:
        """Unlink every segment under the prefix (owner only; attach-mode
        stores drop caches but never delete shared state).  Returns the
        number of segments removed.  Existing mappings in straggler
        processes stay valid — POSIX keeps the pages until unmapped."""
        self._graphs.clear()
        self._arrays.clear()
        self._graph_segment.clear()
        if not self.owner:
            return 0
        removed = 0
        if not SHM_DIR.is_dir():
            return 0
        for path in SHM_DIR.glob(self.prefix + "-*"):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
            if not path.name.endswith(tuple(f".tmp.{os.getpid()}" for _ in ())):
                _tracker_unregister(path.name)
        return removed

    def __enter__(self) -> "SharedGraphStore":
        return self

    def __exit__(self, *exc) -> None:
        self.cleanup()


def _load_graph_segment(prefix: str, name: str) -> "Graph":
    """Pickle reconstructor for graphs shipped as segment references."""
    return store_for(prefix).load_graph(name)


def _load_array_segment(prefix: str, name: str) -> np.ndarray:
    """Pickle reconstructor for arrays shipped as segment references."""
    return store_for(prefix).load_array(name)
