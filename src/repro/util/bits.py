"""Fixed-width bit-vector helpers for ID tags.

The bit convergence algorithms (paper Sections VII-VIII) interpret a
``k``-bit ID tag as a sequence of bits ordered from most to least
significant.  The paper indexes positions ``1..k`` with position 1 the most
significant bit; this module uses the same convention in
:func:`bit_at` / :func:`most_significant_difference` (1-indexed, MSB first)
so that code reads like the paper.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "int_to_bits",
    "bits_to_int",
    "bit_at",
    "bits_at",
    "most_significant_difference",
    "msb_difference_position",
]


def int_to_bits(value: int, width: int) -> np.ndarray:
    """Return ``value`` as a ``width``-bit array, most significant bit first.

    Raises
    ------
    ValueError
        If ``value`` does not fit in ``width`` bits or is negative.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")
    if value >> width:
        raise ValueError(f"value {value} does not fit in {width} bits")
    return np.array([(value >> (width - 1 - i)) & 1 for i in range(width)], dtype=np.uint8)


def bits_to_int(bits: np.ndarray) -> int:
    """Inverse of :func:`int_to_bits` (MSB-first bit array to integer)."""
    out = 0
    for b in np.asarray(bits, dtype=np.uint8):
        out = (out << 1) | int(b)
    return out


def bit_at(value: int, position: int, width: int) -> int:
    """Bit of ``value`` at 1-indexed ``position`` (1 = most significant).

    Matches the paper's ``t[i]`` notation: ``t[1]`` is the most significant
    bit of a ``width``-bit tag and ``t[width]`` the least.
    """
    if not 1 <= position <= width:
        raise ValueError(f"position {position} out of range [1, {width}]")
    return (value >> (width - position)) & 1


def bits_at(values: np.ndarray, position: int, width: int) -> np.ndarray:
    """Vectorized :func:`bit_at` over an integer array of tags."""
    if not 1 <= position <= width:
        raise ValueError(f"position {position} out of range [1, {width}]")
    return (np.asarray(values, dtype=np.int64) >> (width - position)) & 1


def most_significant_difference(a: int, b: int, width: int) -> int | None:
    """1-indexed most significant bit position where ``a`` and ``b`` differ.

    Returns ``None`` when ``a == b``.  This is the per-pair primitive behind
    the paper's *maximum difference bit* ``b_i``.
    """
    diff = a ^ b
    if diff == 0:
        return None
    if diff >> width:
        raise ValueError("values exceed width")
    return width - diff.bit_length() + 1


def msb_difference_position(values: np.ndarray, width: int) -> int | None:
    """The paper's maximum difference bit ``b_i`` over a set of tags.

    Given the multiset of current smallest ID tags, returns the most
    significant 1-indexed position at which at least two tags differ, or
    ``None`` (the paper's ``⊥``) if all tags are equal.
    """
    arr = np.asarray(values, dtype=np.int64)
    if arr.size == 0:
        raise ValueError("values must be non-empty")
    lo = int(arr.min())
    hi = int(arr.max())
    return most_significant_difference(lo, hi, width)
