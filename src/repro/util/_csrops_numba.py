"""Optional numba-compiled backend for the csrops kernel registry.

Bit-identical to the NumPy backend by construction: randomness stays in
the caller-supplied :class:`numpy.random.Generator`, consumed in exactly
the order and count of the NumPy implementations, and the compiled
kernels only perform the deterministic work around those draws.  Each
masked pick is split into two phases:

1. a counting kernel computes the number of eligible CSR entries per
   candidate row (the NumPy path derives the same counts from a running
   sum);
2. the wrapper draws the same ``rng.integers(0, counts[rows])`` array the
   NumPy path draws, then a locate kernel walks each row to its ``j``-th
   eligible entry (the NumPy path finds it by binary search on the
   running sum).

Identical draws over identical counts select identical entries, so
``numpy`` and ``numba`` backends agree bit-for-bit — asserted by the
backend-parametrized oracle suite.  When :mod:`numba` is missing the
kernels below still run as plain Python (so the two-phase algorithms are
exercised by the test suite everywhere), but the backend is only
*registered* as ``"numba"`` when the real JIT is importable.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only where numba is installed
    from numba import njit as _njit

    HAVE_NUMBA = True
except ImportError:
    HAVE_NUMBA = False

    def _njit(*args, **kwargs):
        if args and callable(args[0]):
            return args[0]

        def deco(fn):
            return fn

        return deco


_EMPTY_BOOL = np.empty(0, dtype=np.bool_)


@_njit(cache=True)
def _count_eligible(indptr, indices, rows, neighbor_mask, flat_mask, use_n, use_f, counts):
    for i in range(rows.size):
        u = rows[i]
        c = 0
        for p in range(indptr[u], indptr[u + 1]):
            ok = True
            if use_n and not neighbor_mask[indices[p]]:
                ok = False
            if ok and use_f and not flat_mask[p]:
                ok = False
            if ok:
                c += 1
        counts[i] = c


@_njit(cache=True)
def _locate_jth(indptr, indices, rows, neighbor_mask, flat_mask, use_n, use_f, j, out):
    for i in range(rows.size):
        u = rows[i]
        need = j[i]
        for p in range(indptr[u], indptr[u + 1]):
            ok = True
            if use_n and not neighbor_mask[indices[p]]:
                ok = False
            if ok and use_f and not flat_mask[p]:
                ok = False
            if ok:
                if need == 0:
                    out[i] = indices[p]
                    break
                need -= 1


@_njit(cache=True)
def _gather_offsets(indptr, indices, rows, offsets, out):
    for i in range(rows.size):
        out[i] = indices[indptr[rows[i]] + offsets[i]]


def _masks(neighbor_mask, flat_mask):
    use_n = neighbor_mask is not None
    use_f = flat_mask is not None
    return (
        neighbor_mask if use_n else _EMPTY_BOOL,
        flat_mask if use_f else _EMPTY_BOOL,
        use_n,
        use_f,
    )


def _require_bool(name, mask):
    if mask.dtype != np.bool_:
        raise TypeError(
            f"{name} must have dtype bool, got {mask.dtype} (a non-boolean "
            "mask would be summed, not tested, by the eligibility count)"
        )


def _segmented_random_pick(
    indptr, indices, rng, *, active=None, neighbor_mask=None, flat_mask=None
):
    n = indptr.shape[0] - 1
    pick = np.full(n, -1, dtype=np.int64)
    if active is None:
        active = np.ones(n, dtype=bool)
    else:
        _require_bool("active", active)

    if neighbor_mask is None and flat_mask is None:
        deg = indptr[1:] - indptr[:-1]
        rows = np.flatnonzero(active & (deg > 0))
        if rows.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        out = np.empty(rows.size, dtype=np.int64)
        _gather_offsets(indptr, indices, rows, offsets, out)
        pick[rows] = out
        return pick

    if neighbor_mask is not None:
        _require_bool("neighbor_mask", neighbor_mask)
        if flat_mask is not None:
            _require_bool("flat_mask", flat_mask)
    else:
        if flat_mask.shape != indices.shape:
            raise ValueError("flat_mask must align with indices")
        _require_bool("flat_mask", flat_mask)
    nmask, fmask, use_n, use_f = _masks(neighbor_mask, flat_mask)
    all_rows = np.arange(n, dtype=np.int64)
    counts = np.empty(n, dtype=np.int64)
    _count_eligible(indptr, indices, all_rows, nmask, fmask, use_n, use_f, counts)
    rows = np.flatnonzero(active & (counts > 0))
    if rows.size == 0:
        return pick
    j = rng.integers(0, counts[rows])
    out = np.full(rows.size, -1, dtype=np.int64)
    _locate_jth(indptr, indices, rows, nmask, fmask, use_n, use_f, j, out)
    pick[rows] = out
    return pick


def _segmented_random_pick_subset(
    indptr, indices, rng, vertices, *, neighbor_mask=None, flat_mask=None
):
    vertices = np.asarray(vertices, dtype=np.int64)
    k = vertices.size
    pick = np.full(k, -1, dtype=np.int64)
    if k == 0:
        return pick

    if neighbor_mask is None and flat_mask is None:
        deg = indptr[vertices + 1] - indptr[vertices]
        rows = np.flatnonzero(deg > 0)
        if rows.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        out = np.empty(rows.size, dtype=np.int64)
        _gather_offsets(indptr, indices, vertices[rows], offsets, out)
        pick[rows] = out
        return pick

    if neighbor_mask is not None:
        _require_bool("neighbor_mask", neighbor_mask)
        if flat_mask is not None:
            _require_bool("flat_mask", flat_mask)
    else:
        if flat_mask.shape != indices.shape:
            raise ValueError("flat_mask must align with indices")
        _require_bool("flat_mask", flat_mask)
    nmask, fmask, use_n, use_f = _masks(neighbor_mask, flat_mask)
    counts = np.empty(k, dtype=np.int64)
    _count_eligible(indptr, indices, vertices, nmask, fmask, use_n, use_f, counts)
    rows = np.flatnonzero(counts > 0)
    if rows.size == 0:
        return pick
    j = rng.integers(0, counts[rows])
    out = np.full(rows.size, -1, dtype=np.int64)
    _locate_jth(indptr, indices, vertices[rows], nmask, fmask, use_n, use_f, j, out)
    pick[rows] = out
    return pick


@_njit(cache=True)
def _group_select(t_sorted, s_sorted, u, receivers, winners):
    g = -1
    start = 0
    m = t_sorted.size
    for i in range(m):
        if i == 0 or t_sorted[i] != t_sorted[i - 1]:
            if g >= 0:
                size = i - start
                winners[g] = s_sorted[start + int(u[g] * size)]
            g += 1
            start = i
            receivers[g] = t_sorted[i]
    size = m - start
    winners[g] = s_sorted[start + int(u[g] * size)]


def _segmented_uniform_accept_pairs(senders, targets, rng):
    senders = np.asarray(senders, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    if senders.shape != targets.shape:
        raise ValueError("senders and targets must have equal shape")
    if senders.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    # Same stable-by-target order and the same one-uniform-per-group draws
    # as the NumPy backend (the sort itself stays in NumPy's C quicksort;
    # the compiled part is the group scan + selection).
    m = targets.size
    order = np.argsort(targets * m + np.arange(m, dtype=np.int64))
    s_sorted = senders[order]
    t_sorted = targets[order]
    n_groups = int(np.count_nonzero(t_sorted[1:] != t_sorted[:-1])) + 1
    u = rng.random(n_groups)
    receivers = np.empty(n_groups, dtype=np.int64)
    winners = np.empty(n_groups, dtype=np.int64)
    _group_select(t_sorted, s_sorted, u, receivers, winners)
    return receivers, winners


def _batched_random_pick(
    indptr, indices, rng, active, *, neighbor_mask=None, flat_mask=None
):
    _require_bool("active", active)
    if active.ndim != 2:
        raise ValueError("active must have shape (T, n)")
    T, n = active.shape
    if indptr.shape[0] != n + 1:
        raise ValueError("active rows must match the CSR vertex count")
    nnz = indices.shape[0]
    pick = np.full((T, n), -1, dtype=np.int64)

    if neighbor_mask is None and flat_mask is None:
        deg = indptr[1:] - indptr[:-1]
        rep, rows = np.nonzero(active & (deg > 0)[None, :])
        if rep.size == 0:
            return pick
        offsets = rng.integers(0, deg[rows])
        out = np.empty(rows.size, dtype=np.int64)
        _gather_offsets(indptr, indices, rows, offsets, out)
        pick[rep, rows] = out
        return pick

    if neighbor_mask is not None:
        _require_bool("neighbor_mask", neighbor_mask)
        if neighbor_mask.shape != (T, n):
            raise ValueError("neighbor_mask must have shape (T, n)")
        if flat_mask is not None:
            _require_bool("flat_mask", flat_mask)
    else:
        if flat_mask.shape != (T, nnz):
            raise ValueError("flat_mask must have shape (T, nnz)")
        _require_bool("flat_mask", flat_mask)

    # Per-replica counts/locate over the shared CSR: the flat row id is
    # t*n + u, the masks are per-replica rows of the (T, n)/(T, nnz)
    # arrays.  Row selection and draw order replicate the NumPy backend's
    # flattened (T*n) traversal exactly.
    counts = np.empty((T, n), dtype=np.int64)
    for t in range(T):
        nm = neighbor_mask[t] if neighbor_mask is not None else _EMPTY_BOOL
        fm = flat_mask[t] if flat_mask is not None else _EMPTY_BOOL
        _count_eligible(
            indptr, indices, np.arange(n, dtype=np.int64), nm, fm,
            neighbor_mask is not None, flat_mask is not None, counts[t],
        )
    flat_rows = np.flatnonzero(active.reshape(T * n) & (counts.reshape(T * n) > 0))
    if flat_rows.size == 0:
        return pick
    j = rng.integers(0, counts.reshape(T * n)[flat_rows])
    out = np.full(flat_rows.size, -1, dtype=np.int64)
    rep = flat_rows // n
    rows = flat_rows - rep * n
    for t in range(T):
        sel = np.flatnonzero(rep == t)
        if sel.size == 0:
            continue
        nm = neighbor_mask[t] if neighbor_mask is not None else _EMPTY_BOOL
        fm = flat_mask[t] if flat_mask is not None else _EMPTY_BOOL
        sub = np.full(sel.size, -1, dtype=np.int64)
        _locate_jth(
            indptr, indices, rows[sel], nm, fm,
            neighbor_mask is not None, flat_mask is not None, j[sel], sub,
        )
        out[sel] = sub
    pick.reshape(T * n)[flat_rows] = out
    return pick


def make_table():
    """Kernel table for :func:`repro.util.csrops.register_backend`.

    The same table works without numba installed (kernels degrade to
    plain Python) — useful for exercising the two-phase algorithms in
    environments without the JIT — but ``csrops`` only auto-registers it
    as the ``"numba"`` backend when :data:`HAVE_NUMBA` is true.
    """
    return {
        "segmented_random_pick": _segmented_random_pick,
        "segmented_random_pick_subset": _segmented_random_pick_subset,
        "segmented_uniform_accept_pairs": _segmented_uniform_accept_pairs,
        "batched_random_pick": _batched_random_pick,
    }
