"""Low-level utilities shared across the library.

Submodules
----------
rng
    Deterministic seed derivation and generator spawning.
bits
    Fixed-width bit-vector helpers used for ID tags.
csrops
    Segmented (per-row) operations on CSR adjacency structures; these are
    the primitives behind the vectorized round engine.
"""

from repro.util.rng import derive_seed, make_rng, spawn_rngs
from repro.util.bits import (
    int_to_bits,
    bits_to_int,
    bit_at,
    most_significant_difference,
)

__all__ = [
    "derive_seed",
    "make_rng",
    "spawn_rngs",
    "int_to_bits",
    "bits_to_int",
    "bit_at",
    "most_significant_difference",
]
