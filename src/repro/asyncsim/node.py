"""Per-event node interface for the asynchronous tier, plus the adapter.

Where the synchronous tiers drive a :class:`~repro.core.protocol.NodeProtocol`
through fixed round phases, the event tier drives an :class:`AsyncNode`
through three handlers:

* :meth:`AsyncNode.on_timer` — the node's local step: it refreshes its
  advertised :attr:`~AsyncNode.tag`, scans its (currently up) neighbors,
  and may name one to attempt a connection with;
* :meth:`AsyncNode.on_connect` — a connection involving the node was
  established; it composes its half of the symmetric exchange;
* :meth:`AsyncNode.on_deliver` — the peer's payload arrived.

:class:`ProtocolAdapter` ports any round-based :class:`NodeProtocol` to
this interface by treating each timer firing as one *local* round —
exactly the "asynchronous activations" reading of paper Section VIII,
where a node's local round counter is its own activity count.  Protocols
whose correctness leans on globally synchronized round numbers (the
synchronized bit-convergence groups) do not survive this port; the
non-synchronized variants (blind gossip, PUSH-PULL, async bit
convergence) do, which is why those three are the tier's algorithm set.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.payload import Message
from repro.core.protocol import NodeProtocol, RoundView

__all__ = ["EventView", "AsyncNode", "ProtocolAdapter"]


@dataclass(frozen=True)
class EventView:
    """What a node sees when its timer fires.

    Attributes
    ----------
    tick
        Current virtual time (1-indexed).
    neighbors
        Ids of currently up, activated neighbors (empty while ``busy``).
    neighbor_tags
        Their advertised tags, aligned with ``neighbors``.
    rng
        The node's private generator.
    busy
        Whether the node is reserved by an in-flight connection attempt
        or an open connection — a busy node may update local state but
        cannot initiate a new connection this step.
    """

    tick: int
    neighbors: np.ndarray
    neighbor_tags: np.ndarray
    rng: np.random.Generator
    busy: bool


class AsyncNode(ABC):
    """Base class for event-driven node implementations.

    Handlers mutate local state only; all model-rule enforcement (tag
    width, neighbor membership, reservation, payload budget) lives in
    the engine, mirroring the reference-engine split.
    """

    #: Advertising tag length ``b`` this node requires.
    tag_length: int = 0
    #: Currently advertised tag; handlers update it, scanners read it.
    #: A node advertises 0 until its first local step.
    tag: int = 0

    @abstractmethod
    def on_timer(self, view: EventView) -> int | None:
        """One local step: refresh :attr:`tag`; optionally return a
        neighbor id to attempt a connection with (``None`` to listen)."""

    @abstractmethod
    def on_connect(self, peer: int) -> Message:
        """Compose this node's payload for an established connection."""

    @abstractmethod
    def on_deliver(self, peer: int, message: Message) -> None:
        """Handle the peer's payload."""

    # -- fault hooks (repro.faults) ----------------------------------------

    def reset(self) -> None:
        """Restore initial state (crash/rejoin with reset)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement crash/rejoin reset"
        )

    def corrupt(self, rng: np.random.Generator, n: int) -> None:
        """Overwrite local state with arbitrary values."""
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state corruption"
        )


class ProtocolAdapter(AsyncNode):
    """Run a round-based :class:`NodeProtocol` on the event tier.

    Each timer firing is one local round: ``choose_tag`` refreshes the
    advertised tag, ``decide`` (only when free — an occupied node cannot
    scan or propose) picks the connection target, and ``end_round``
    closes the local round.  ``compose``/``deliver`` map directly onto
    the connection handlers.  Note the exchange of local round ``k``
    completes ticks *after* ``end_round(k)`` ran — harmless for the
    ported protocols, whose ``end_round`` is stateless and whose
    ``deliver`` is order-insensitive (monotone adoption).

    Attribute access falls through to the wrapped protocol, so monitor
    predicates (``leader``, ``informed``) work unchanged.
    """

    def __init__(self, proto: NodeProtocol):
        self.proto = proto
        self.local_step = 0
        self.tag = 0

    @property
    def tag_length(self) -> int:  # type: ignore[override]
        return self.proto.tag_length

    def on_timer(self, view: EventView) -> int | None:
        self.local_step += 1
        self.tag = int(self.proto.choose_tag(self.local_step, view.rng))
        target: int | None = None
        if not view.busy:
            rv = RoundView(
                local_round=self.local_step,
                neighbors=view.neighbors,
                neighbor_tags=view.neighbor_tags,
                rng=view.rng,
            )
            t = self.proto.decide(rv)
            target = None if t is None else int(t)
        self.proto.end_round()
        return target

    def on_connect(self, peer: int) -> Message:
        return self.proto.compose(peer)

    def on_deliver(self, peer: int, message: Message) -> None:
        self.proto.deliver(peer, message)

    def reset(self) -> None:
        # The local step counter keeps counting across a reboot, exactly
        # like the synchronous engines' activation-anchored local round.
        self.proto.reset()
        self.tag = 0

    def corrupt(self, rng: np.random.Generator, n: int) -> None:
        self.proto.corrupt(rng, n)

    def __getattr__(self, name: str):
        if name == "proto":
            raise AttributeError(name)
        return getattr(self.proto, name)
