"""Discrete-event asynchronous engine tier (bounded-delay scheduling).

The synchronous tiers (:mod:`repro.core`) execute the mobile telephone
model round by round.  This package executes the *asynchronous*
reformulation of Newport/Weaver/Zheng (arXiv:2102.06804): nodes expose
per-event handlers instead of round steps, and a pluggable bounded-delay
:class:`~repro.asyncsim.scheduler.Scheduler` — the adversary — decides
when each pending event is delivered, subject to delivering it within
``Δ`` virtual-time ticks.  The one-connection-at-a-time rule survives
the loss of rounds via connection reservation inside the event loop.

See ``docs/model.md`` ("The asynchronous event model") for the mapping
between virtual-time traces and the synchronous round invariants.
"""

from repro.asyncsim.algorithms import (
    AsyncSetup,
    async_bit_convergence_setup,
    blind_gossip_setup,
    push_pull_setup,
)
from repro.asyncsim.engine import EventRecord, EventSimEngine
from repro.asyncsim.node import AsyncNode, EventView, ProtocolAdapter
from repro.asyncsim.scheduler import (
    AdversarialScheduler,
    RandomScheduler,
    Scheduler,
    make_scheduler,
)

__all__ = [
    "AsyncNode",
    "AsyncSetup",
    "AdversarialScheduler",
    "EventRecord",
    "EventSimEngine",
    "EventView",
    "ProtocolAdapter",
    "RandomScheduler",
    "Scheduler",
    "async_bit_convergence_setup",
    "blind_gossip_setup",
    "make_scheduler",
    "push_pull_setup",
]
