"""Event-tier ports of the paper's algorithms (adapter-based).

Each ``*_setup`` builder wraps the existing per-node protocol in a
:class:`~repro.asyncsim.node.ProtocolAdapter` and bundles it with the
stabilization predicate and the progress observable the adversarial
scheduler targets.  Only protocols whose correctness does not lean on
globally synchronized round numbers are ported: blind gossip and
PUSH-PULL are memoryless per round, and *async* bit convergence
(Section VIII's non-synchronized variant) anchors its group boundaries
to the node's local activity count — which is exactly what a timer
firing is.  The synchronized bit-convergence protocol is deliberately
absent: its phase structure dissolves with the rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.algorithms.async_bit_convergence import make_async_bit_convergence_nodes
from repro.algorithms.blind_gossip import make_blind_gossip_nodes
from repro.algorithms.push_pull import make_push_pull_nodes
from repro.asyncsim.node import AsyncNode, ProtocolAdapter
from repro.core.monitor import all_leaders_are, rumor_complete
from repro.core.payload import UIDSpace

__all__ = [
    "AsyncSetup",
    "blind_gossip_setup",
    "push_pull_setup",
    "async_bit_convergence_setup",
]


@dataclass
class AsyncSetup:
    """Everything the event engine needs to run one algorithm.

    ``progress`` is the per-node "already holds the eventual value" mask
    the adversarial scheduler targets; ``stop_when`` is the absorbing
    stabilization predicate over the live nodes.
    """

    nodes: list[AsyncNode]
    stop_when: Callable[[Sequence[AsyncNode]], bool]
    progress: Callable[[Sequence[AsyncNode]], np.ndarray]
    tag_length: int


def blind_gossip_setup(uid_space: UIDSpace) -> AsyncSetup:
    """Blind gossip leader election (paper Section V) on the event tier."""
    protos = make_blind_gossip_nodes(uid_space)
    winner = uid_space.min_uid()
    return AsyncSetup(
        nodes=[ProtocolAdapter(p) for p in protos],
        stop_when=all_leaders_are(winner),
        progress=lambda nds: np.array([nd.leader == winner for nd in nds], dtype=bool),
        tag_length=0,
    )


def push_pull_setup(
    uid_space: UIDSpace, sources: set[int], direction: str = "both"
) -> AsyncSetup:
    """PUSH-PULL rumor spreading (paper Section V) on the event tier."""
    protos = make_push_pull_nodes(uid_space, sources, direction)
    return AsyncSetup(
        nodes=[ProtocolAdapter(p) for p in protos],
        stop_when=rumor_complete,
        progress=lambda nds: np.array([nd.informed for nd in nds], dtype=bool),
        tag_length=0,
    )


def async_bit_convergence_setup(
    uid_space: UIDSpace,
    config,
    seed: int | None = None,
    *,
    unique_tags: bool = False,
) -> AsyncSetup:
    """Non-synchronized bit convergence (Section VIII) on the event tier.

    The sync-round embedding in
    :mod:`repro.algorithms.async_bit_convergence` simulates staggered
    local rounds inside global rounds; here the local rounds are real —
    each node's group boundaries follow its own timer firings.
    """
    protos = make_async_bit_convergence_nodes(
        uid_space, config, seed, unique_tags=unique_tags
    )
    # Stabilization target: the UID of the lexicographically smallest
    # (id-tag, uid-key) pair — the same winner the sync tests use.
    winner = min(protos, key=lambda p: p.smallest_pair).uid
    return AsyncSetup(
        nodes=[ProtocolAdapter(p) for p in protos],
        stop_when=all_leaders_are(winner),
        progress=lambda nds: np.array([nd.leader == winner for nd in nds], dtype=bool),
        tag_length=protos[0].tag_length,
    )
