"""Seeded event-queue simulator for the bounded-delay asynchronous model.

:class:`EventSimEngine` is the fourth engine tier.  Virtual time
advances in integer ticks; a priority queue of events, ordered by
``(tick, class, sequence)``, replaces the synchronous round loop.  Three
event kinds carry the protocol:

* **timer** — a node's local step: it refreshes its advertised tag,
  scans its up neighbors, and may issue a connection attempt; the node's
  next timer is then scheduled ``1..Δ`` ticks out (so every node takes a
  local step at least every ``Δ`` ticks — the bounded-delay guarantee);
* **connect** — a connection attempt arrives at its target ``1..Δ``
  ticks after being issued.  It establishes a connection iff the edge
  still exists, the target is up, and the target is *free*;
* **deliver** — one direction of an established connection's symmetric
  payload exchange arrives, again ``1..Δ`` ticks out.

**Connection reservation** enforces the mobile telephone model's
one-connection-at-a-time rule without rounds: a node is reserved from
the moment it issues an attempt until the attempt fails or both
payloads of the resulting connection have been delivered; reserved
nodes reject incoming attempts and cannot initiate.  Releases take
effect at the *end* of a tick, so within any single tick a node joins
at most one connection and never both proposes and accepts — which is
what lets the synchronous per-round invariants audit async traces.

**Trace bucketing**: with ``collect_trace=True`` the engine emits one
shared-format :class:`~repro.core.trace.RoundRecord` per tick (the
virtual-time bucket): proposals are connect-attempt *arrivals*,
connections are establishments, tags/active are the end-of-tick state.
``conformance.invariants.check_async_trace`` checks the applicable rule
subset plus scheduler fairness over the recorded event log.

**Faults** route through the same queue as scheduler-visible events:
crash-window edges and state-corruption events are queued at their
scheduled ticks (class 0 — they precede ordinary events of the same
tick, matching the synchronous start-of-round hook order); a crash
tears down the victim's connection and kills its timer chain, a rejoin
re-seeds the local clock (first step within ``Δ``); connection drops
fire at establishment; tag corruption flips the bits a scanner
*observes* (per scan, the per-tick analogue of the per-round radio
model).  Plan rounds are read as ticks.

Determinism: every stochastic choice draws from a stream derived from
``(seed, label)`` and the queue order is a deterministic function of
those draws, so identical ``(seed, Δ, scheduler)`` reproduces a
bit-identical event order, trace, and final state — across runs and
across worker processes.
"""

from __future__ import annotations

import heapq
from typing import Callable, NamedTuple, Sequence

import numpy as np

from repro.asyncsim.node import AsyncNode, EventView
from repro.asyncsim.scheduler import Scheduler, make_scheduler
from repro.core.engine import ModelViolation
from repro.core.payload import Message, PayloadBudget
from repro.core.trace import RoundRecord, RunResult, Trace
from repro.graphs.dynamic import DynamicGraph
from repro.util.rng import make_rng, spawn_rngs

__all__ = ["EventSimEngine", "EventRecord"]

# Event kind codes (heap payload compactness; names are the public face).
_TIMER, _CONNECT, _DELIVER, _FAULT_EDGE, _CORRUPT = 0, 1, 2, 3, 4
_KIND_NAMES = ("timer", "connect", "deliver", "fault-edge", "corrupt")

_EMPTY_IDS = np.empty(0, dtype=np.int64)
_EMPTY_PAIRS = np.empty((0, 2), dtype=np.int64)


class EventRecord(NamedTuple):
    """One scheduled event in the engine's event log.

    ``deliver - pending`` is the scheduler-chosen delay; the
    ``scheduler-fairness`` invariant asserts it lies in ``[1, Δ]`` for
    every record.  The log is also the object the determinism tests
    compare bit-for-bit.
    """

    kind: str
    node: int
    peer: int | None
    pending: int
    deliver: int


class EventSimEngine:
    """Executes :class:`AsyncNode` handlers under a bounded-delay scheduler.

    Parameters
    ----------
    dynamic_graph
        Topology source; queried at event-processing ticks (``τ`` is
        read in ticks).  Adaptive adversarial graphs are rejected — the
        event tier's adversary is the scheduler.
    nodes
        One :class:`AsyncNode` per vertex, index-aligned.
    seed
        Root seed; node, scheduler, and fault streams derive from it.
    delta
        Bounded-delay parameter ``Δ ≥ 1``.
    scheduler
        ``"random"``, ``"adversarial"``, or a :class:`Scheduler`
        instance (bound by the engine to ``Δ`` and a seeded stream).
    activation_rounds
        1-indexed activation tick per node (Section VIII staggered
        starts); a node's first timer fires exactly at activation.
    budget
        Per-connection payload budget (default: Section IV for ``N=n``).
    collect_trace
        Record one :class:`RoundRecord` per tick (implies the event log).
    collect_events
        Record the :class:`EventRecord` log without a full trace.
    fault_plan
        Optional :class:`~repro.faults.plan.FaultPlan`, rounds read as
        ticks; an empty plan is normalized away.
    stop_when
        Stabilization predicate over the (live) nodes; stored so
        :meth:`run` satisfies the harness ``EngineLike`` protocol.
    progress
        Optional ``nodes -> (n,) bool`` mask fed to observation-hungry
        schedulers (the adversarial targeting signal).
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        nodes: Sequence[AsyncNode],
        *,
        seed: int | None = None,
        delta: int = 1,
        scheduler: Scheduler | str = "random",
        activation_rounds: Sequence[int] | None = None,
        budget: PayloadBudget | None = None,
        collect_trace: bool = False,
        collect_events: bool = False,
        fault_plan=None,
        stop_when: Callable[[Sequence[AsyncNode]], bool] | None = None,
        progress: Callable[[Sequence[AsyncNode]], np.ndarray] | None = None,
    ):
        from repro.graphs.adversary import AdaptiveDynamicGraph

        if isinstance(dynamic_graph, AdaptiveDynamicGraph):
            raise ValueError(
                "the event tier does not support adaptive adversarial graphs; "
                "its adversary is the scheduler"
            )
        n = dynamic_graph.n
        if len(nodes) != n:
            raise ValueError(f"need {n} nodes, got {len(nodes)}")
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.dg = dynamic_graph
        self.nodes = list(nodes)
        self.n = n
        self.delta = int(delta)
        self.budget = budget or PayloadBudget(n_upper=max(n, 2))
        if activation_rounds is None:
            self.activation = np.ones(n, dtype=np.int64)
        else:
            self.activation = np.asarray(activation_rounds, dtype=np.int64)
            if self.activation.shape != (n,) or self.activation.min() < 1:
                raise ValueError("activation_rounds must be n 1-indexed ticks")
        self._node_rngs = spawn_rngs(seed, n, "node")
        self.scheduler = (
            make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
        )
        self.scheduler.bind(self.delta, make_rng(seed, "scheduler"))
        self._stop_when = stop_when
        self._progress = progress
        self._tag_lengths = [int(nd.tag_length) for nd in self.nodes]

        # -- mutable run state ------------------------------------------------
        self._heap: list = []
        self._seq = 0
        self._busy = np.zeros(n, dtype=bool)
        self._down = np.zeros(n, dtype=bool)
        self._tags = np.zeros(n, dtype=np.int64)
        self._timer_gen = np.zeros(n, dtype=np.int64)
        self._attempt_id = np.full(n, -1, dtype=np.int64)
        self._next_attempt = 0
        self._conn: dict[int, list] = {}
        self._next_conn = 0
        self._released: list[int] = []
        self._props: list[tuple[int, int]] = []
        self._conns: list[tuple[int, int]] = []
        self._emitted = 0
        self.trace = Trace() if collect_trace else None
        self.event_log: list[EventRecord] | None = (
            [] if (collect_events or collect_trace) else None
        )
        #: Events dispatched (timer/connect/deliver) — the bench unit.
        self.events_processed = 0
        #: Surviving established connections (2 payloads each).
        self.connections_made = 0
        #: Last completed tick (``rounds`` analogue for parity).
        self.rounds_executed = 0

        # -- fault plan (rounds read as ticks) --------------------------------
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None
        self._plan = fault_plan
        self._crashes = None
        self._rejoins: dict[int, tuple[int, ...]] = {}
        self._drop_p: float | None = None
        self._flip_q: float | None = None
        self._gate = 0
        self._perma: np.ndarray | None = None
        self._fault_rng: np.random.Generator | None = None
        if fault_plan is not None:
            fault_plan.validate_for(n)
            if fault_plan.membership is not None and not fault_plan.membership.is_empty():
                raise NotImplementedError(
                    "the event tier does not support open-world membership "
                    "schedules; run membership plans on the sync tiers "
                    "(reference/vectorized/batched)"
                )
            self._fault_rng = make_rng(seed, "faults")
            self._gate = fault_plan.quiesce_round
            cr = fault_plan.crashes
            if cr is not None and not cr.is_empty():
                self._crashes = cr
                self._rejoins = cr.rejoin_resets()
                perma = np.zeros(n, dtype=bool)
                for w in cr.windows:
                    if w.end is None:
                        perma[w.node] = True
                self._perma = perma if perma.any() else None
            drop = fault_plan.connection_drop
            if drop is not None and not drop.is_empty():
                self._drop_p = drop.p
            flips = fault_plan.tag_corruption
            if flips is not None and not flips.is_empty():
                self._flip_q = flips.q

        # -- seed the queue ---------------------------------------------------
        # Fault events are class 0: within a tick they precede ordinary
        # events, matching the synchronous start-of-round hook order
        # (crash edges and rejoin resets, then corruption, then steps).
        if self._crashes is not None:
            for t in sorted(self._crashes.transition_rounds()):
                self._push(t, 0, _FAULT_EDGE, -1, -1, None)
        if fault_plan is not None:
            for e in fault_plan.state_corruption:
                self._push(e.round, 0, _CORRUPT, -1, -1, e)
        # A node's first timer fires exactly at its activation tick.
        for v in range(n):
            self._push(int(self.activation[v]), 1, _TIMER, v, -1, 0)

    # -- queue plumbing -------------------------------------------------------

    def _push(self, tick: int, cls: int, kind: int, a: int, b: int, payload) -> None:
        heapq.heappush(self._heap, (tick, cls, self._seq, kind, a, b, payload))
        self._seq += 1

    def _schedule(self, kind: int, a: int, b: int, tick: int, payload) -> None:
        """Scheduler-delayed event: pends at ``tick``, delivers in ``[1, Δ]``."""
        name = _KIND_NAMES[kind]
        d = self.scheduler.delay(name, a, None if b < 0 else b, tick)
        d = int(d)
        if not 1 <= d <= self.delta:
            raise ModelViolation(
                f"scheduler {self.scheduler.name!r} returned delay {d} "
                f"outside [1, {self.delta}]"
            )
        self._push(tick + d, 1, kind, a, b, payload)
        if self.event_log is not None:
            self.event_log.append(
                EventRecord(name, a, None if b < 0 else b, tick, tick + d)
            )

    # -- event handlers -------------------------------------------------------

    def _tag_width_ok(self, v: int, tag: int) -> bool:
        b = self._tag_lengths[v]
        if b == 0:
            return tag == 0
        return 0 <= tag < (1 << b)

    def _participating(self, tick: int) -> np.ndarray:
        return (self.activation <= tick) & ~self._down

    def _corrupt_observed(self, tags: np.ndarray, bits: int) -> np.ndarray:
        """Flip each observed tag bit with probability ``q`` (per scan)."""
        for bit in range(bits):
            flip = self._fault_rng.random(tags.shape) < self._flip_q
            np.bitwise_xor(tags, 1 << bit, out=tags, where=flip)
        return tags

    def _on_timer(self, tick: int, v: int, gen: int) -> None:
        if gen != self._timer_gen[v] or self._down[v]:
            return  # stale clock chain (the node crashed since scheduling)
        self.events_processed += 1
        nd = self.nodes[v]
        rng = self._node_rngs[v]
        busy = bool(self._busy[v])
        if busy:
            nbrs = _EMPTY_IDS
            view = EventView(tick, nbrs, _EMPTY_IDS, rng, True)
        else:
            graph = self.dg.graph_at(tick)
            nbrs = graph.neighbors(v)
            nbrs = nbrs[self._participating(tick)[nbrs]]
            ntags = self._tags[nbrs]
            if self._flip_q is not None and nbrs.size:
                bits = max(self._tag_lengths)
                if bits:
                    ntags = self._corrupt_observed(ntags.copy(), bits)
            view = EventView(tick, nbrs, ntags, rng, False)
        target = nd.on_timer(view)
        tag = int(nd.tag)
        if not self._tag_width_ok(v, tag):
            raise ModelViolation(
                f"node {v} advertised tag {tag} outside {self._tag_lengths[v]} bits"
            )
        self._tags[v] = tag
        if target is not None:
            if busy:
                raise ModelViolation(f"node {v} proposed while occupied")
            target = int(target)
            pos = int(np.searchsorted(nbrs, target))
            if pos == nbrs.size or int(nbrs[pos]) != target:
                raise ModelViolation(
                    f"node {v} proposed to {target}, not an up neighbor at tick {tick}"
                )
            self._busy[v] = True
            aid = self._next_attempt
            self._next_attempt += 1
            self._attempt_id[v] = aid
            self._schedule(_CONNECT, v, target, tick, aid)
        self._schedule(_TIMER, v, -1, tick, gen)

    def _on_connect(self, tick: int, u: int, t: int, aid: int) -> None:
        self.events_processed += 1
        if aid != self._attempt_id[u]:
            return  # the proposer crashed while the attempt was in flight
        self._attempt_id[u] = -1
        graph = self.dg.graph_at(tick)
        row = graph.neighbors(u)
        pos = int(np.searchsorted(row, t))
        edge = pos < row.size and int(row[pos]) == t
        if not edge or self._down[t] or self.activation[t] > tick:
            # The link (or the target) vanished in flight: the radio
            # handshake never happened — no proposal materializes.
            self._released.append(u)
            return
        self._props.append((u, t))
        if self._busy[t]:
            self._released.append(u)  # reserved target: attempt rejected
            return
        self._busy[t] = True
        if self._drop_p is not None and self._fault_rng.random() < self._drop_p:
            # Handshake succeeded, transfer did not (ConnectionDropModel);
            # both endpoints stay reserved to the end of the tick.
            self._released.append(u)
            self._released.append(t)
            return
        msg_u = self.nodes[u].on_connect(t)
        msg_t = self.nodes[t].on_connect(u)
        for m, owner in ((msg_u, u), (msg_t, t)):
            if not isinstance(m, Message):
                raise ModelViolation(f"node {owner} composed a non-Message")
            self.budget.validate(m)
        cid = self._next_conn
        self._next_conn += 1
        self._conn[cid] = [u, t, 2]
        self._conns.append((u, t))
        self.connections_made += 1
        self._schedule(_DELIVER, t, u, tick, (cid, msg_u))
        self._schedule(_DELIVER, u, t, tick, (cid, msg_t))

    def _on_deliver(self, tick: int, v: int, peer: int, payload) -> None:
        self.events_processed += 1
        cid, msg = payload
        conn = self._conn.get(cid)
        if conn is None:
            return  # connection torn down by a crash while in flight
        self.nodes[v].on_deliver(peer, msg)
        conn[2] -= 1
        if conn[2] == 0:
            del self._conn[cid]
            self._released.append(conn[0])
            self._released.append(conn[1])

    def _on_fault_edge(self, tick: int) -> None:
        down = self._crashes.down_at(tick, self.n)
        newly_down = down & ~self._down
        newly_up = ~down & self._down
        self._down = down
        for v in np.flatnonzero(newly_down):
            v = int(v)
            self._busy[v] = False
            self._attempt_id[v] = -1
            self._timer_gen[v] += 1  # kill the in-flight clock chain
            dead = [c for c, cc in self._conn.items() if v in (cc[0], cc[1])]
            for cid in dead:
                u0, t0, _ = self._conn.pop(cid)
                other = t0 if u0 == v else u0
                if not self._down[other]:
                    self._busy[other] = False  # the link died; peer is free
        for v in self._rejoins.get(tick, ()):
            nd = self.nodes[v]
            nd.reset()
            self._tags[v] = int(nd.tag)
        for v in np.flatnonzero(newly_up):
            # Re-seed the local clock: first step within Δ of rejoining.
            self._schedule(_TIMER, int(v), -1, tick, int(self._timer_gen[v]))

    def _on_corrupt(self, tick: int, event) -> None:
        victims = self._fault_rng.choice(
            self.n, size=event.victim_count(self.n), replace=False
        )
        for v in victims:
            self.nodes[int(v)].corrupt(self._fault_rng, self.n)

    def _dispatch(self, tick: int, kind: int, a: int, b: int, payload) -> None:
        if kind == _TIMER:
            self._on_timer(tick, a, payload)
        elif kind == _CONNECT:
            self._on_connect(tick, a, b, payload)
        elif kind == _DELIVER:
            self._on_deliver(tick, a, b, payload)
        elif kind == _FAULT_EDGE:
            self._on_fault_edge(tick)
        else:
            self._on_corrupt(tick, payload)

    # -- trace emission -------------------------------------------------------

    def _emit_gap_records(self, tick: int) -> None:
        """Records for event-free ticks in ``(emitted, tick)`` (state is
        frozen there — every state change is an event)."""
        for g in range(self._emitted + 1, tick):
            part = self._participating(g)
            self.trace.append(
                RoundRecord(
                    round_index=g,
                    proposals=_EMPTY_PAIRS,
                    connections=_EMPTY_PAIRS,
                    tags=np.where(part, self._tags, -1),
                    active=part,
                )
            )
        self._emitted = max(self._emitted, tick - 1)

    def _emit_record(self, tick: int) -> None:
        part = self._participating(tick)
        self.trace.append(
            RoundRecord(
                round_index=tick,
                proposals=np.asarray(self._props, dtype=np.int64).reshape(-1, 2),
                connections=np.asarray(self._conns, dtype=np.int64).reshape(-1, 2),
                tags=np.where(part, self._tags, -1),
                active=part,
            )
        )
        self._emitted = tick
        self._props.clear()
        self._conns.clear()

    # -- runs -----------------------------------------------------------------

    def run_until(
        self,
        max_ticks: int,
        stop_when: Callable[[Sequence[AsyncNode]], bool],
        *,
        check_every: int = 1,
    ) -> RunResult:
        """Run until ``stop_when`` holds at a tick boundary or ``max_ticks``.

        The predicate is evaluated at the first event tick of each
        ``check_every``-tick window (state only changes at events), is
        gated until the fault plan's quiesce tick, and quantifies over
        the live nodes only — permanently crashed nodes are excluded,
        exactly as in the synchronous tiers.  ``RunResult.rounds`` is
        the final tick.
        """
        if max_ticks < 1:
            raise ValueError("max_ticks must be >= 1")
        check_every = max(1, int(check_every))
        last_activation = int(self.activation.max())
        if self._perma is not None:
            observed = [self.nodes[v] for v in np.flatnonzero(~self._perma)]
        else:
            observed = self.nodes
        heap = self._heap
        wants_obs = self.scheduler.wants_observation
        next_check = check_every
        while heap and heap[0][0] <= max_ticks:
            tick = heap[0][0]
            if self.trace is not None:
                self._emit_gap_records(tick)
            while heap and heap[0][0] == tick:
                _, _, _, kind, a, b, payload = heapq.heappop(heap)
                self._dispatch(tick, kind, a, b, payload)
            # Releases take effect at end of tick: one connection per
            # node per virtual-time bucket.
            for v in self._released:
                if not self._down[v]:
                    self._busy[v] = False
            self._released.clear()
            if self.trace is not None:
                self._emit_record(tick)
            else:
                self._props.clear()
                self._conns.clear()
            self.rounds_executed = tick
            if wants_obs:
                prog = None if self._progress is None else self._progress(self.nodes)
                self.scheduler.observe(tick, prog)
            if tick >= next_check:
                next_check = (tick // check_every + 1) * check_every
                if tick >= self._gate and stop_when(observed):
                    return RunResult(
                        stabilized=True,
                        rounds=tick,
                        rounds_after_last_activation=max(0, tick - last_activation + 1),
                        trace=self.trace,
                    )
        if self.trace is not None:
            self._emit_gap_records(max_ticks + 1)
        self.rounds_executed = max_ticks
        stabilized = max_ticks >= self._gate and stop_when(observed)
        return RunResult(
            stabilized=stabilized,
            rounds=max_ticks,
            rounds_after_last_activation=max(0, max_ticks - last_activation + 1),
            trace=self.trace,
        )

    def run(self, max_rounds: int, *, check_every: int = 1) -> RunResult:
        """Harness ``EngineLike`` entry point (``max_rounds`` = max ticks)."""
        if self._stop_when is None:
            raise ValueError(
                "EventSimEngine.run requires stop_when at construction "
                "(or call run_until)"
            )
        return self.run_until(max_rounds, self._stop_when, check_every=check_every)
