"""Bounded-delay event schedulers (the asynchronous adversary).

In the asynchronous reformulation of the mobile telephone model
(arXiv:2102.06804), time advances in integer *ticks* and an adversarial
scheduler decides when each pending event — a node's next local step, a
connection attempt in flight, a payload delivery — actually happens.
The only guarantee is *bounded delay*: every event pends for at least 1
and at most ``Δ`` ticks.  ``Δ = 1`` collapses back to lock-step; larger
``Δ`` lets the adversary skew local clocks and stall information flow,
which is exactly the regime the A-series experiments sweep.

A :class:`Scheduler` is consulted once per scheduled event and must
return a delay in ``[1, Δ]``; the engine raises on anything outside the
band, and the recorded event log is independently audited by the
``scheduler-fairness`` conformance invariant.  Schedulers are seeded
(the engine hands them a dedicated RNG stream), so identical
``(seed, Δ, scheduler)`` reproduces a bit-identical event order.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "AdversarialScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]

#: Names accepted by :func:`make_scheduler` (and the CLI / fuzzer).
SCHEDULER_NAMES = ("random", "adversarial")


class Scheduler(ABC):
    """Chooses the delivery delay of every scheduled event.

    The engine calls :meth:`bind` once with the delay bound and a
    dedicated RNG stream, then :meth:`delay` for each event.  Schedulers
    that set :attr:`wants_observation` additionally receive the per-node
    progress mask at every tick boundary via :meth:`observe` — the
    adaptive-adversary hook (mirroring how the synchronous tiers expose
    the informed mask to ``AdaptiveDynamicGraph``).
    """

    #: Name used by the CLI / fuzz configs.
    name: str = "scheduler"
    #: Whether the engine should compute and feed the progress mask.
    wants_observation: bool = False

    def bind(self, delta: int, rng: np.random.Generator) -> None:
        """Attach the delay bound ``Δ`` and the scheduler's RNG stream."""
        if delta < 1:
            raise ValueError(f"delta must be >= 1, got {delta}")
        self.delta = int(delta)
        self.rng = rng

    def observe(self, tick: int, progress: np.ndarray | None) -> None:
        """Receive the per-node progress mask at a tick boundary."""

    @abstractmethod
    def delay(self, kind: str, node: int, peer: int | None, tick: int) -> int:
        """Delay in ``[1, Δ]`` for an event pending at ``tick``.

        ``kind`` is ``"timer"`` (node's next local step), ``"connect"``
        (``node``'s attempt travelling to ``peer``) or ``"deliver"`` (a
        payload travelling from ``peer`` to ``node``).
        """


class RandomScheduler(Scheduler):
    """Uniform seeded delays — the oblivious (non-adaptive) scheduler.

    Each event independently pends ``Uniform{1..Δ}`` ticks.  This is the
    natural null model: no targeting, but local clocks still drift apart
    by up to ``Δ`` per step, so rounds genuinely dissolve for ``Δ > 1``.
    """

    name = "random"

    def delay(self, kind: str, node: int, peer: int | None, tick: int) -> int:
        if self.delta == 1:
            return 1
        return int(self.rng.integers(1, self.delta + 1))


class AdversarialScheduler(Scheduler):
    """Worst-case bounded-delay adversary: maximal uniform dilation.

    Every event — local steps, connection attempts, payload deliveries —
    pends the full ``Δ`` ticks.  For the monotone gossip protocols this
    tier runs (information only accumulates, so delivering any event
    *earlier* can only help the algorithm), the pointwise-maximal
    schedule is the worst the bounded-delay adversary can do, and the
    policy sweep bears that out: selective targeting (stalling progressed
    sources, or keeping specific nodes reserved) measurably *speeds up*
    stabilization relative to uniform random delays, while full dilation
    slows it by ≈Δ/E[Uniform{1..Δ}].  A pleasant side effect is that
    under full dilation local clocks stay synchronized, so connection
    attempts keep colliding on popular targets exactly as they do in the
    lock-step rounds — none of the collision waste is scheduled away.

    The policy is deterministic, so runs are trivially bit-reproducible;
    bounded delay still forces every event through, which is why
    stabilization stays finite (the async model's progress guarantee) —
    the A5 experiment measures the slowdown against the random baseline.
    Adaptive adversaries can subclass and use :meth:`observe` (set
    :attr:`wants_observation`) to act on the per-node progress mask.
    """

    name = "adversarial"

    def delay(self, kind: str, node: int, peer: int | None, tick: int) -> int:
        return self.delta


def make_scheduler(name: str) -> Scheduler:
    """Instantiate a scheduler by CLI/fuzzer name."""
    if name == "random":
        return RandomScheduler()
    if name == "adversarial":
        return AdversarialScheduler()
    raise ValueError(f"unknown scheduler {name!r} (expected one of {SCHEDULER_NAMES})")
