"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``experiments list``
    Show the experiment registry (ids, claims, profiles).
``experiments run <ID> [--profile quick|standard] [--save PATH]``
    Run one experiment and print (optionally save) its table.
``experiments run-all [--profile quick|standard] [--checkpoint-dir D]
[--resume] [--timeout-per-trial S] [--max-retries K]``
    Run the whole registry as one durable, resumable campaign: each
    finished experiment is checkpointed atomically, hung cells are
    killed and retried with backoff, and ``--resume`` restarts a killed
    campaign from its last durable state (see ``docs/operations.md``).
``graph <family> [params…]``
    Build a graph family and report n, m, Δ, α (best estimate), γ (exact
    when small), and the spectral lower bound.
``simulate <algorithm> --family <family> [params…] [--fault-plan PLAN.json]``
    Run one seeded leader-election / rumor-spreading execution and print
    the stabilization round plus a progress sparkline; an optional JSON
    fault plan injects crashes, drops, and corruption.
``faults template [--out PATH]`` / ``faults describe PLAN.json``
    Emit an example fault-plan JSON, or summarize an existing one.
``bounds --n N --alpha A --delta D [--tau T]``
    Evaluate every closed-form bound from the paper at a parameter point.
``conformance fuzz [--budget N] [--seed S] [--out DIR]``
    Differential-fuzz the three engine tiers against the model invariants
    and each other; failing configurations are shrunk and written as
    replayable JSON repro files.
``conformance replay REPRO.json``
    Re-run one repro file and report whether it still fails.
``live run --algorithm A --family F --nodes N [--tau T] [--fault-plan P]``
    Deploy the algorithm over real localhost sockets — every node an
    asyncio task with its own TCP listener — run to stabilization, and
    optionally invariant-check the live trace (``--check``) or
    cross-check its stabilization distribution against the reference
    engine (``--compare-reference K``).
"""

from __future__ import annotations

import argparse
import math
import sys

import numpy as np

__all__ = ["main", "build_parser"]

#: family name -> (builder arg names, defaults) for CLI construction.
_FAMILY_ARGS: dict[str, tuple[tuple[str, ...], tuple[int, ...]]] = {
    "clique": (("n",), (16,)),
    "path": (("n",), (16,)),
    "ring": (("n",), (16,)),
    "star": (("n",), (16,)),
    "double_star": (("leaves",), (8,)),
    "line_of_stars": (("stars", "points"), (4, 4)),
    "binary_tree": (("n",), (15,)),
    "grid": (("rows", "cols"), (4, 4)),
    "hypercube": (("dim",), (4,)),
    "complete_bipartite": (("a", "b"), (4, 4)),
    "barbell": (("clique_size", "bridge"), (5, 1)),
    "lollipop": (("clique_size", "tail"), (5, 3)),
    "wheel": (("n",), (12,)),
    "torus": (("rows", "cols"), (4, 4)),
    "caterpillar": (("spine", "legs"), (4, 3)),
    "staircase_bipartite": (("m",), (8,)),
    "random_regular": (("n", "d"), (16, 4)),
    "connected_erdos_renyi": (("n",), (16,)),
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for the ``repro`` command."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Leader election in the mobile telephone model "
        "(reproduction of Newport, IPDPS 2017).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments", help="list or run paper experiments")
    exp_sub = p_exp.add_subparsers(dest="exp_command", required=True)
    exp_sub.add_parser("list", help="show the registry")
    p_run = exp_sub.add_parser("run", help="run one experiment")
    p_run.add_argument("exp_id", help="experiment id, e.g. E3 or A1")
    p_run.add_argument("--profile", choices=("quick", "standard"), default="quick")
    p_run.add_argument("--save", help="write the rendered table to this path")
    p_verify = exp_sub.add_parser(
        "verify", help="run one experiment and check its paper-claim shape"
    )
    p_verify.add_argument("exp_id", help="experiment id, e.g. E3 or A1")
    p_verify.add_argument("--profile", choices=("quick", "standard"), default="quick")
    p_all = exp_sub.add_parser(
        "run-all", help="run the full registry as a durable, resumable campaign"
    )
    p_all.add_argument("--profile", choices=("quick", "standard"), default="quick")
    p_all.add_argument(
        "--checkpoint-dir", default="campaign-checkpoints", metavar="D",
        help="directory for per-experiment checkpoint JSONs",
    )
    p_all.add_argument(
        "--resume", action="store_true",
        help="reload valid checkpoints instead of re-running their cells",
    )
    p_all.add_argument(
        "--timeout-per-trial", type=float, default=None, metavar="S",
        help="wall-clock seconds per trial before a hung worker is killed",
    )
    p_all.add_argument(
        "--timeout-per-experiment", type=float, default=None, metavar="S",
        help="wall-clock ceiling for one experiment cell",
    )
    p_all.add_argument(
        "--max-retries", type=int, default=2, metavar="K",
        help="extra attempts per work unit before degrading/failing",
    )
    p_all.add_argument(
        "--failure-budget", type=int, default=16, metavar="N",
        help="total failures tolerated before the campaign aborts",
    )
    p_all.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="S",
        help="base of the exponential retry backoff",
    )
    p_all.add_argument(
        "--only", default=None, metavar="IDS",
        help="comma-separated experiment ids (default: whole registry)",
    )
    p_all.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the assembled results text (standard_results.txt format) "
        "here once every cell has a checkpoint",
    )
    p_all.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-experiment shape checks",
    )
    p_all.add_argument(
        "--pool-workers", type=int, default=None, metavar="K",
        help="run cells on a persistent K-worker pool with work stealing "
        "and shared-memory graphs (default: serial scheduler; tables are "
        "bit-identical either way)",
    )
    p_all.add_argument(
        "--no-shared-graphs", action="store_true",
        help="disable the shared-memory graph plane (pool workers then "
        "rebuild graphs per cell)",
    )

    p_graph = sub.add_parser("graph", help="inspect a graph family instance")
    p_graph.add_argument("family", choices=sorted(_FAMILY_ARGS))
    p_graph.add_argument("params", nargs="*", type=int, help="family parameters")
    p_graph.add_argument("--seed", type=int, default=0)

    p_sim = sub.add_parser("simulate", help="run one algorithm execution")
    p_sim.add_argument(
        "algorithm",
        choices=("blind_gossip", "bit_convergence", "async_bit_convergence",
                 "push_pull", "ppush"),
    )
    p_sim.add_argument("--family", choices=sorted(_FAMILY_ARGS), default="random_regular")
    p_sim.add_argument("--params", nargs="*", type=int, default=None)
    p_sim.add_argument("--tau", type=float, default=math.inf,
                       help="stability factor (inf = static topology)")
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--max-rounds", type=int, default=1_000_000)
    p_sim.add_argument(
        "--fault-plan",
        default=None,
        metavar="PLAN.json",
        help="JSON fault plan to inject (see `repro faults template`)",
    )
    p_sim.add_argument(
        "--engine-backend",
        choices=("numpy", "numba"),
        default=None,
        help="csrops kernel backend (numba requires the optional extra; "
        "default: REPRO_CSROPS_BACKEND or auto-detect)",
    )
    p_sim.add_argument(
        "--chunk-nodes",
        type=int,
        default=None,
        metavar="K",
        help="run via the chunked large-n engine with K-vertex slabs "
        "(blind_gossip only; incompatible with --fault-plan)",
    )
    p_sim.add_argument(
        "--engine",
        choices=("sync", "async"),
        default="sync",
        help="execution model: lock-step rounds (sync, default) or the "
        "discrete-event bounded-delay tier (async; blind_gossip, "
        "push_pull, and async_bit_convergence only)",
    )
    p_sim.add_argument(
        "--delta",
        type=int,
        default=1,
        metavar="D",
        help="bounded-delay parameter for --engine async: every event is "
        "delivered within [1, D] virtual-time ticks (D=1 is lock-step)",
    )
    p_sim.add_argument(
        "--scheduler",
        choices=("random", "adversarial"),
        default="random",
        help="--engine async event scheduler: seeded uniform delays or "
        "the worst-case maximal-dilation adversary",
    )

    p_faults = sub.add_parser("faults", help="author and inspect fault plans")
    faults_sub = p_faults.add_subparsers(dest="faults_command", required=True)
    p_tmpl = faults_sub.add_parser(
        "template", help="emit an example fault-plan JSON"
    )
    p_tmpl.add_argument("--out", help="write the template to this path")
    p_desc = faults_sub.add_parser(
        "describe", help="summarize a fault-plan JSON file"
    )
    p_desc.add_argument("plan", help="path to the plan JSON")

    p_bounds = sub.add_parser("bounds", help="evaluate the paper's bound formulas")
    p_bounds.add_argument("--n", type=int, required=True)
    p_bounds.add_argument("--alpha", type=float, required=True)
    p_bounds.add_argument("--delta", type=int, required=True)
    p_bounds.add_argument("--tau", type=float, default=1.0)

    p_conf = sub.add_parser(
        "conformance", help="cross-engine conformance checking and fuzzing"
    )
    conf_sub = p_conf.add_subparsers(dest="conf_command", required=True)
    p_fuzz = conf_sub.add_parser(
        "fuzz", help="differential-fuzz the engine tiers against the model"
    )
    p_fuzz.add_argument("--budget", type=int, default=200,
                        help="number of sampled configurations")
    p_fuzz.add_argument("--seed", type=int, default=0)
    p_fuzz.add_argument(
        "--out", default=None, metavar="DIR",
        help="directory for repro JSONs of shrunk failing configurations",
    )
    p_fuzz.add_argument(
        "--no-shrink", action="store_true",
        help="report failing configurations without shrinking them",
    )
    p_replay = conf_sub.add_parser(
        "replay", help="re-run a repro file produced by `conformance fuzz`"
    )
    p_replay.add_argument("repro", help="path to the repro JSON")

    p_live = sub.add_parser(
        "live", help="run protocols over real localhost sockets (deployment tier)"
    )
    live_sub = p_live.add_subparsers(dest="live_command", required=True)
    p_live_run = live_sub.add_parser(
        "run", help="one live localhost run: real TCP per edge, shared Trace out"
    )
    p_live_run.add_argument(
        "--algorithm", default="blind_gossip",
        choices=("blind_gossip", "push_pull", "ppush", "bit_convergence"),
    )
    p_live_run.add_argument(
        "--family", default="clique",
        choices=("clique", "ring", "path", "star", "wheel", "random_regular"),
    )
    p_live_run.add_argument("--nodes", type=int, default=16, metavar="N")
    p_live_run.add_argument(
        "--degree", type=int, default=8, help="random_regular only"
    )
    p_live_run.add_argument(
        "--tau", type=float, default=math.inf,
        help="churn period (rounds between relabelings; inf = static)",
    )
    p_live_run.add_argument("--seed", type=int, default=0)
    p_live_run.add_argument("--max-rounds", type=int, default=10_000)
    p_live_run.add_argument(
        "--rounds", type=int, default=None, metavar="R",
        help="run exactly R rounds, ignoring stabilization (bench mode)",
    )
    p_live_run.add_argument(
        "--fault-plan", default=None, metavar="PLAN.json",
        help="inject crash / connection-drop faults as real network events",
    )
    p_live_run.add_argument(
        "--wall-clock-limit", type=float, default=None, metavar="SECONDS",
        help="hard bound on the whole run's wall clock",
    )
    p_live_run.add_argument(
        "--check", action="store_true",
        help="run the conformance invariant checkers on the live trace",
    )
    p_live_run.add_argument(
        "--compare-reference", type=int, default=None, metavar="K",
        help="instead of one run, cross-check K live trials against the "
        "reference engine's stabilization distribution",
    )

    p_tour = sub.add_parser(
        "tournament",
        help="run the algorithm × adversary robustness tournament and print "
        "the ranked leaderboard",
    )
    p_tour.add_argument("--profile", choices=("quick", "standard"), default="quick")
    p_tour.add_argument(
        "--checkpoint-dir", default="tournament-checkpoints", metavar="D",
        help="directory for per-algorithm checkpoint JSONs (the campaign "
        "scheduler makes the run durable and resumable)",
    )
    p_tour.add_argument(
        "--resume", action="store_true",
        help="reload valid checkpoints instead of re-running their grids",
    )
    p_tour.add_argument(
        "--pool-workers", type=int, default=None, metavar="K",
        help="run algorithm grids on a K-worker pool (tables are "
        "bit-identical to a serial run)",
    )
    p_tour.add_argument(
        "--max-retries", type=int, default=2, metavar="K",
        help="extra attempts per grid before the campaign gives up on it",
    )
    p_tour.add_argument(
        "--no-verify", action="store_true",
        help="skip the per-grid shape checks",
    )
    p_tour.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the leaderboard + per-algorithm grids here; a "
        ".json path uses the checkpoint document format, so non-finite "
        "cells (the inf inflation sentinel) round-trip portably",
    )

    p_report = sub.add_parser(
        "report", help="assemble saved benchmark results into a markdown report"
    )
    p_report.add_argument(
        "--results", default="benchmarks/results", help="directory of saved *.json results"
    )
    p_report.add_argument("--output", default="results_report.md")
    p_report.add_argument("--title", default=None)
    return parser


def _build_family(family: str, params: list[int] | None, seed: int):
    from repro.graphs import families

    names, defaults = _FAMILY_ARGS[family]
    values = list(params) if params else list(defaults)
    if len(values) != len(names):
        raise SystemExit(
            f"{family} expects {len(names)} parameter(s) {names}, got {values}"
        )
    builder = families.FAMILY_BUILDERS[family]
    if family == "connected_erdos_renyi":
        return builder(values[0], 0.3, seed=seed)
    if family in ("random_regular",):
        return builder(*values, seed=seed)
    return builder(*values)


def _cmd_experiments_list() -> int:
    from repro.harness.experiments import EXPERIMENTS, registry_order

    width = max(len(k) for k in EXPERIMENTS)
    for exp_id in registry_order():
        print(f"{exp_id.ljust(width)}  {EXPERIMENTS[exp_id].claim}")
    return 0


def _cmd_experiments_run(exp_id: str, profile: str, save: str | None) -> int:
    from repro.harness.experiments import run_experiment

    table = run_experiment(exp_id.upper(), profile)
    rendered = table.render()
    print(rendered)
    if save:
        with open(save, "w") as fh:
            fh.write(rendered + "\n")
        print(f"\nsaved to {save}")
    return 0


def _cmd_experiments_run_all(args) -> int:
    from repro.harness.campaign import (
        CampaignConfig,
        render_campaign_text,
        run_campaign,
    )

    config = CampaignConfig(
        checkpoint_dir=args.checkpoint_dir,
        profile=args.profile,
        exp_ids=args.only.split(",") if args.only else None,
        resume=args.resume,
        timeout_per_trial=args.timeout_per_trial,
        timeout_per_experiment=args.timeout_per_experiment,
        max_retries=args.max_retries,
        failure_budget=args.failure_budget,
        backoff_base=args.backoff_base,
        verify=not args.no_verify,
        pool_workers=args.pool_workers,
        shared_graphs=not args.no_shared_graphs,
    )
    report = run_campaign(config, progress=lambda line: print(line, flush=True))
    print(report.summary(), flush=True)
    if args.output and report.ok:
        text = render_campaign_text(
            config.checkpoint_dir, config.profile, config.exp_ids
        )
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"results text written to {args.output}")
    return 0 if report.ok else 1


def _cmd_tournament(args) -> int:
    from repro.harness.campaign import (
        CampaignConfig,
        checkpoint_path,
        run_campaign,
    )
    from repro.harness.persistence import load_document
    from repro.harness.tournament import TOURNAMENT_EXP_IDS, tournament_leaderboard

    config = CampaignConfig(
        checkpoint_dir=args.checkpoint_dir,
        profile=args.profile,
        exp_ids=list(TOURNAMENT_EXP_IDS),
        resume=args.resume,
        max_retries=args.max_retries,
        verify=not args.no_verify,
        pool_workers=args.pool_workers,
    )
    report = run_campaign(config, progress=lambda line: print(line, flush=True))
    print(report.summary(), flush=True)
    if not report.ok:
        return 1
    tables = {}
    for exp_id in TOURNAMENT_EXP_IDS:
        doc = load_document(
            checkpoint_path(config.checkpoint_dir, exp_id, config.profile)
        )
        tables[exp_id] = doc.table
    board = tournament_leaderboard(tables)
    print()
    print(board.render())
    if args.output:
        if args.output.endswith(".json"):
            from repro.harness.persistence import _table_to_json, save_table

            save_table(
                board,
                args.output,
                exp_id="TOURNAMENT",
                profile=args.profile,
                extra={
                    "grids": {
                        e: _table_to_json(tables[e]) for e in TOURNAMENT_EXP_IDS
                    }
                },
            )
        else:
            blocks = [board.render()]
            blocks += [tables[exp_id].render() for exp_id in TOURNAMENT_EXP_IDS]
            with open(args.output, "w") as fh:
                fh.write("\n\n".join(blocks) + "\n")
        print(f"\nleaderboard written to {args.output}")
    return 0


def _cmd_experiments_verify(exp_id: str, profile: str) -> int:
    from repro.harness.experiments import run_experiment
    from repro.harness.verify import verify_experiment

    table = run_experiment(exp_id.upper(), profile)
    print(table.render())
    print()
    results = verify_experiment(exp_id.upper(), table)
    for res in results:
        print(res)
    failed = [r for r in results if not r.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} checks passed"
        + (f" — {len(failed)} FAILED" if failed else "")
    )
    return 1 if failed else 0


def _cmd_graph(family: str, params: list[int], seed: int) -> int:
    from repro.analysis.expansion import (
        vertex_expansion,
        vertex_expansion_spectral_lower,
    )
    from repro.analysis.matching import gamma_exact

    g = _build_family(family, params or None, seed)
    print(f"family     : {family}")
    print(f"n          : {g.n}")
    print(f"edges      : {g.num_edges}")
    print(f"max degree : {g.max_degree}")
    print(f"connected  : {g.is_connected()}")
    alpha = vertex_expansion(g, seed=seed)
    kind = "exact" if g.n <= 18 else "sweep upper bound"
    print(f"alpha      : {alpha:.4g}  ({kind})")
    print(f"alpha >=   : {vertex_expansion_spectral_lower(g):.4g}  (spectral)")
    if g.n <= 14:
        gamma = gamma_exact(g)
        print(f"gamma      : {gamma:.4g}  (exact; Lemma V.1 floor alpha/4 = {alpha/4:.4g})")
    return 0


def _cmd_simulate(
    algorithm: str,
    family: str,
    params: list[int] | None,
    tau: float,
    seed: int,
    max_rounds: int,
    fault_plan_path: str | None = None,
    engine_backend: str | None = None,
    chunk_nodes: int | None = None,
    engine: str = "sync",
    delta: int = 1,
    scheduler: str = "random",
) -> int:
    if engine == "async":
        return _cmd_simulate_async(
            algorithm, family, params, tau, seed, max_rounds,
            fault_plan_path, chunk_nodes, engine_backend, delta, scheduler,
        )
    from repro.algorithms import (
        AsyncBitConvergenceVectorized,
        BitConvergenceConfig,
        BitConvergenceVectorized,
        BlindGossipVectorized,
        PPushVectorized,
        PushPullVectorized,
    )
    from repro.analysis.progress import SpreadCurve
    from repro.core.vectorized import VectorizedEngine
    from repro.graphs.dynamic import (
        PeriodicRelabelDynamicGraph,
        StaticDynamicGraph,
        validate_tau,
    )
    from repro.harness.experiments import uid_keys_random

    try:
        tau = validate_tau(tau)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if engine_backend is not None:
        from repro.util import csrops

        try:
            csrops.set_backend(engine_backend)
        except (KeyError, ValueError) as exc:
            print(
                f"error: backend {engine_backend!r} is not available "
                f"(registered: {', '.join(csrops.available_backends())}); "
                "install the optional numba extra to enable it",
                file=sys.stderr,
            )
            return 2
        print(f"backend    : {csrops.get_backend()}")
    if chunk_nodes is not None and chunk_nodes < 1:
        print(f"error: --chunk-nodes must be >= 1, got {chunk_nodes}", file=sys.stderr)
        return 2

    g = _build_family(family, params, seed)
    n = g.n
    keys = uid_keys_random(n, seed)
    config = BitConvergenceConfig(n_upper=max(n, 2), delta_bound=g.max_degree, beta=1.0)
    algos = {
        "blind_gossip": lambda: BlindGossipVectorized(keys),
        "bit_convergence": lambda: BitConvergenceVectorized(
            keys, config, tag_seed=seed, unique_tags=True
        ),
        "async_bit_convergence": lambda: AsyncBitConvergenceVectorized(
            keys, config, tag_seed=seed, unique_tags=True
        ),
        "push_pull": lambda: PushPullVectorized(np.array([0])),
        "ppush": lambda: PPushVectorized(np.array([0])),
    }
    algo = algos[algorithm]()
    dg = (
        StaticDynamicGraph(g)
        if math.isinf(tau)
        else PeriodicRelabelDynamicGraph(g, tau, seed=seed)
    )
    plan = None
    gate = 0
    if fault_plan_path:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_file(fault_plan_path)
        gate = plan.quiesce_round
        print(f"fault plan : {plan.describe()}")
    if chunk_nodes is not None:
        from repro.core.largen import LargeNEngine

        if plan is not None:
            print("error: --chunk-nodes is incompatible with --fault-plan",
                  file=sys.stderr)
            return 2
        if not algo.sparse_compatible:
            print(
                f"error: --chunk-nodes requires a sparse-compatible algorithm "
                f"({algorithm} is not)",
                file=sys.stderr,
            )
            return 2
        engine = LargeNEngine(dg, algo, seed=seed, chunk_nodes=chunk_nodes)
    else:
        engine = VectorizedEngine(dg, algo, seed=seed, fault_plan=plan)
    curve = SpreadCurve()
    progress = getattr(algo, "observable", lambda s: None)
    for r in range(1, max_rounds + 1):
        engine.step(r)
        obs = progress(engine.state)
        if obs is not None:
            curve.record(int(np.asarray(obs).sum()))
        # With a fault plan, convergence only counts after the last
        # scheduled fault (transient events can fake agreement).
        if r >= gate and algo.converged(engine.state):
            print(f"algorithm  : {algorithm}")
            print(f"topology   : {family} (n={n}, Delta={g.max_degree}, tau={tau})")
            print(f"stabilized : round {r}")
            if len(curve):
                print(f"progress   : {curve.spark()}")
            return 0
    print(f"did not stabilize within {max_rounds} rounds")
    return 1


def _cmd_simulate_async(
    algorithm: str,
    family: str,
    params: list[int] | None,
    tau: float,
    seed: int,
    max_ticks: int,
    fault_plan_path: str | None,
    chunk_nodes: int | None,
    engine_backend: str | None,
    delta: int,
    scheduler: str,
) -> int:
    from repro.algorithms import BitConvergenceConfig
    from repro.asyncsim import (
        EventSimEngine,
        async_bit_convergence_setup,
        blind_gossip_setup,
        push_pull_setup,
    )
    from repro.core.payload import UIDSpace
    from repro.graphs.dynamic import (
        PeriodicRelabelDynamicGraph,
        StaticDynamicGraph,
        validate_tau,
    )

    if chunk_nodes is not None or engine_backend is not None:
        print(
            "error: --engine async is incompatible with --chunk-nodes "
            "and --engine-backend",
            file=sys.stderr,
        )
        return 2
    if delta < 1:
        print(f"error: --delta must be >= 1, got {delta}", file=sys.stderr)
        return 2
    try:
        tau = validate_tau(tau)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    g = _build_family(family, params, seed)
    us = UIDSpace(g.n, seed=seed)
    if algorithm == "blind_gossip":
        setup = blind_gossip_setup(us)
    elif algorithm == "push_pull":
        setup = push_pull_setup(us, {us.winner_vertex()})
    elif algorithm == "async_bit_convergence":
        config = BitConvergenceConfig(
            n_upper=max(g.n, 2), delta_bound=g.max_degree, beta=1.0
        )
        setup = async_bit_convergence_setup(us, config, seed, unique_tags=True)
    else:
        print(
            f"error: --engine async supports blind_gossip, push_pull, and "
            f"async_bit_convergence ({algorithm} needs synchronized rounds)",
            file=sys.stderr,
        )
        return 2
    dg = (
        StaticDynamicGraph(g)
        if math.isinf(tau)
        else PeriodicRelabelDynamicGraph(g, tau, seed=seed)
    )
    plan = None
    if fault_plan_path:
        from repro.faults import FaultPlan

        plan = FaultPlan.from_file(fault_plan_path)
        print(f"fault plan : {plan.describe()}")
    eng = EventSimEngine(
        dg,
        setup.nodes,
        seed=seed,
        delta=delta,
        scheduler=scheduler,
        fault_plan=plan,
        progress=setup.progress,
    )
    res = eng.run_until(max_ticks, setup.stop_when, check_every=4)
    print(f"algorithm  : {algorithm}")
    print(f"topology   : {family} (n={g.n}, Delta={g.max_degree}, tau={tau})")
    print(f"model      : async, delta={delta}, scheduler={scheduler}")
    if res.stabilized:
        print(f"stabilized : tick {res.rounds}")
        print(f"events     : {eng.events_processed} "
              f"({eng.connections_made} connections)")
        return 0
    print(f"did not stabilize within {max_ticks} ticks")
    return 1


def _cmd_faults(args) -> int:
    from repro.faults import FaultPlan, example_plan

    if args.faults_command == "template":
        text = example_plan().to_json()
        if args.out:
            with open(args.out, "w") as fh:
                fh.write(text + "\n")
            print(f"template written to {args.out}")
        else:
            print(text)
        return 0
    plan = FaultPlan.from_file(args.plan)
    print(plan.describe())
    return 0


def _cmd_conformance(args) -> int:
    from repro.conformance.differential import fuzz, replay_file, write_repro

    if args.conf_command == "replay":
        report = replay_file(args.repro)
        print(f"config: {report.config.to_dict()}")
        if report.failed:
            print(f"still failing ({len(report.failure_lines())} problems):")
            for line in report.failure_lines():
                print(f"  {line}")
            return 1
        print("configuration passes all conformance checks")
        return 0

    summary = fuzz(
        args.budget,
        args.seed,
        log=lambda line: print(line, flush=True),
        shrink_failures=not args.no_shrink,
    )
    print(
        f"\n{summary.configs} configurations fuzzed "
        f"(seed {args.seed}); "
        f"acceptance samples {summary.acceptance.count} "
        f"(z = {summary.acceptance.z():.2f}); "
        f"ref/vec pooled log-median-ratio {summary.pooled_log_ratio:+.3f} "
        f"over {summary.pooled_samples} configs"
    )
    if summary.ok:
        print("no invariant violations, no cross-engine mismatches")
        return 0
    print(f"{len(summary.failures)} failing configuration(s):")
    for i, report in enumerate(summary.failures):
        print(f"  {report.config.to_dict()}")
        for line in report.failure_lines()[:6]:
            print(f"    {line}")
        if args.out:
            import os

            os.makedirs(args.out, exist_ok=True)
            path = os.path.join(args.out, f"repro-{args.seed}-{i}.json")
            write_repro(report, path)
            print(f"    repro written to {path}")
    return 1


def _cmd_live(args) -> int:
    from repro.conformance.invariants import check_trace
    from repro.conformance.livecheck import live_reference_check
    from repro.faults import FaultPlan
    from repro.live import LiveRunConfig, run_live
    from repro.live.run import _dynamic_graph, build_bundle, build_graph

    plan = FaultPlan.from_file(args.fault_plan) if args.fault_plan else None
    cfg = LiveRunConfig(
        algorithm=args.algorithm,
        family=args.family,
        n=args.nodes,
        degree=args.degree,
        tau=args.tau,
        seed=args.seed,
        max_rounds=args.max_rounds,
        fixed_rounds=args.rounds,
        fault_plan=plan,
        wall_clock_limit=args.wall_clock_limit,
    )

    if args.compare_reference is not None:
        mismatches = live_reference_check(
            cfg, live_trials=args.compare_reference, log=print
        )
        if mismatches:
            print(f"\n{len(mismatches)} mismatch(es):")
            for line in mismatches:
                print(f"  {line}")
            return 1
        print("\nlive runs conform to the reference engine")
        return 0

    report = run_live(cfg)
    result = report.result
    if args.rounds is not None:
        print(f"ran {result.rounds} fixed rounds over live sockets")
    elif result.stabilized:
        print(f"stabilized after {result.rounds} rounds over live sockets")
    else:
        print(f"did not stabilize within {result.rounds} rounds")
    print(
        f"  {report.rounds_per_sec:.1f} rounds/sec, "
        f"{report.connections_made} connections, "
        f"{report.frames_sent} frames, {report.elapsed:.2f}s wall clock"
    )
    status = 0 if (args.rounds is not None or result.stabilized) else 1
    if args.check and report.trace is not None:
        graph = build_graph(cfg)
        bundle = build_bundle(cfg, graph)
        violations = check_trace(
            report.trace,
            _dynamic_graph(cfg, graph),
            tag_length=bundle.tag_length,
            fault_plan=cfg.fault_plan,
        )
        if violations:
            print(f"  {len(violations)} invariant violation(s):")
            for v in violations:
                print(f"    {v}")
            status = 1
        else:
            print("  live trace passes all model-invariant checks")
    return status


def _cmd_bounds(n: int, alpha: float, delta: int, tau: float) -> int:
    from repro.analysis import bounds

    rows = [
        ("tau_hat = min(tau, log Delta)", bounds.tau_hat(tau, delta)),
        ("f(tau_hat) = Delta^(1/tau_hat)*tau_hat*log n",
         bounds.f_approx(bounds.tau_hat(tau, delta), delta, n)),
        ("Thm VI.1   blind gossip upper", bounds.blind_gossip_upper(n, alpha, delta)),
        ("Sec VI     blind gossip lower", bounds.blind_gossip_lower(alpha, delta)),
        ("Cor VI.6   PUSH-PULL upper", bounds.push_pull_upper(n, alpha, delta)),
        ("Thm VII.2  bit convergence upper",
         bounds.bit_convergence_upper(n, alpha, delta, tau)),
        ("Thm VIII.2 async bit convergence upper",
         bounds.async_bit_convergence_upper(n, alpha, delta, tau)),
        ("classical PUSH-PULL reference", bounds.classical_push_pull_upper(n, alpha)),
    ]
    width = max(len(name) for name, _ in rows)
    print(f"parameters: n={n} alpha={alpha} Delta={delta} tau={tau}")
    for name, value in rows:
        print(f"  {name.ljust(width)} : {value:,.1f}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "experiments":
        if args.exp_command == "list":
            return _cmd_experiments_list()
        if args.exp_command == "verify":
            return _cmd_experiments_verify(args.exp_id, args.profile)
        if args.exp_command == "run-all":
            return _cmd_experiments_run_all(args)
        return _cmd_experiments_run(args.exp_id, args.profile, args.save)
    if args.command == "graph":
        return _cmd_graph(args.family, args.params, args.seed)
    if args.command == "simulate":
        return _cmd_simulate(
            args.algorithm, args.family, args.params, args.tau, args.seed,
            args.max_rounds, args.fault_plan,
            args.engine_backend, args.chunk_nodes,
            args.engine, args.delta, args.scheduler,
        )
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "bounds":
        return _cmd_bounds(args.n, args.alpha, args.delta, args.tau)
    if args.command == "conformance":
        return _cmd_conformance(args)
    if args.command == "live":
        return _cmd_live(args)
    if args.command == "tournament":
        return _cmd_tournament(args)
    if args.command == "report":
        from repro.harness.reporting import write_report

        out = write_report(args.results, args.output, title=args.title)
        print(f"report written to {out}")
        return 0
    raise AssertionError("unreachable")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
