"""Execution traces and per-round metrics.

Traces exist for three consumers: tests asserting model invariants (each
node in at most one connection per round, proposals only along current
edges), experiments measuring progress quantities (connections across a
cut per round), and debugging.  Tracing is opt-in; the engines skip all
record-keeping when no trace is attached, keeping the hot path lean.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RoundRecord", "Trace", "RunResult", "BatchedRunResult"]


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about one simulated round.

    Attributes
    ----------
    round_index
        Global 1-indexed round number.
    proposals
        ``(k, 2)`` array of ``(sender, target)`` proposals issued.
    connections
        ``(c, 2)`` array of ``(sender, receiver)`` established connections.
    tags
        Advertised tag per node (-1 for inactive nodes).
    active
        Boolean activation mask for the round.
    """

    round_index: int
    proposals: np.ndarray
    connections: np.ndarray
    tags: np.ndarray
    active: np.ndarray


class Trace:
    """An append-only list of :class:`RoundRecord` with convenience queries."""

    def __init__(self) -> None:
        self.rounds: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    def connections_at(self, round_index: int) -> np.ndarray:
        """Connections of a given 1-indexed round."""
        return self.rounds[round_index - 1].connections

    def total_connections(self) -> int:
        """Total connections established over the whole run."""
        return int(sum(r.connections.shape[0] for r in self.rounds))

    def connections_per_round(self) -> np.ndarray:
        """Connection count per recorded round."""
        return np.array([r.connections.shape[0] for r in self.rounds], dtype=np.int64)

    def proposals_per_round(self) -> np.ndarray:
        """Proposal count per recorded round."""
        return np.array([r.proposals.shape[0] for r in self.rounds], dtype=np.int64)

    def cut_connections(self, in_set: np.ndarray) -> np.ndarray:
        """Per-round count of connections crossing the cut ``in_set``.

        ``in_set`` is a boolean mask over nodes; a crossing connection has
        exactly one endpoint inside.  This is the per-round realization of
        the paper's ν(B(S)) capacity argument.
        """
        in_set = np.asarray(in_set, dtype=bool)
        out = np.zeros(len(self.rounds), dtype=np.int64)
        for i, rec in enumerate(self.rounds):
            if rec.connections.size:
                a = in_set[rec.connections[:, 0]]
                b = in_set[rec.connections[:, 1]]
                out[i] = int((a ^ b).sum())
        return out

    def connection_participants_ok(self) -> bool:
        """Model invariant: every node joins at most one connection per round."""
        for rec in self.rounds:
            if rec.connections.size == 0:
                continue
            flat = rec.connections.ravel()
            if np.unique(flat).size != flat.size:
                return False
        return True


@dataclass
class RunResult:
    """Outcome of one engine run.

    Attributes
    ----------
    stabilized
        Whether the stop predicate was satisfied within the horizon.
    rounds
        Rounds executed until stabilization (or the horizon if not).
    rounds_after_last_activation
        Same, counted from the last node's activation round — the metric
        Theorem VIII.2 is stated in.  Equals ``rounds`` for synchronized
        starts.
    trace
        Optional attached :class:`Trace`.
    """

    stabilized: bool
    rounds: int
    rounds_after_last_activation: int
    trace: Trace | None = None


@dataclass(frozen=True)
class BatchedRunResult:
    """Per-replica outcomes of one :class:`~repro.core.batched.BatchedVectorizedEngine` run.

    Array analogue of :class:`RunResult` over the replica axis: entry ``t``
    describes replica ``t`` exactly as a :class:`RunResult` would describe
    the corresponding single-replica run.
    """

    #: ``(T,)`` bool — whether each replica stabilized within the horizon.
    stabilized: np.ndarray
    #: ``(T,)`` int — rounds until stabilization (or the horizon).
    rounds: np.ndarray
    #: ``(T,)`` int — rounds counted from the last activation round.
    rounds_after_last_activation: np.ndarray

    @property
    def replicas(self) -> int:
        return int(self.stabilized.shape[0])

    def replica(self, t: int) -> RunResult:
        """The ``RunResult`` view of replica ``t``."""
        return RunResult(
            stabilized=bool(self.stabilized[t]),
            rounds=int(self.rounds[t]),
            rounds_after_last_activation=int(self.rounds_after_last_activation[t]),
        )
