"""Execution traces and per-round metrics.

Traces exist for three consumers: tests asserting model invariants (each
node in at most one connection per round, proposals only along current
edges), experiments measuring progress quantities (connections across a
cut per round), and debugging.  Tracing is opt-in; the engines skip all
record-keeping when no trace is attached, keeping the hot path lean.

Every engine tier emits the same :class:`RoundRecord` shape — the
reference and vectorized engines append to a :class:`Trace` directly,
while the batched engine appends flat per-round batches to a
:class:`BatchedTrace` whose :meth:`BatchedTrace.replica` view recovers a
per-replica :class:`Trace` — so the conformance checkers in
:mod:`repro.conformance.invariants` audit all three tiers through one
record format.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "RoundRecord",
    "Trace",
    "BatchedTrace",
    "RunResult",
    "BatchedRunResult",
    "traces_equal",
]


@dataclass(frozen=True)
class RoundRecord:
    """Everything observable about one simulated round.

    Attributes
    ----------
    round_index
        Global 1-indexed round number.
    proposals
        ``(k, 2)`` array of ``(sender, target)`` proposals issued.
    connections
        ``(c, 2)`` array of ``(sender, receiver)`` established connections.
    tags
        Advertised tag per node (-1 for inactive nodes).
    active
        Boolean activation mask for the round.
    """

    round_index: int
    proposals: np.ndarray
    connections: np.ndarray
    tags: np.ndarray
    active: np.ndarray


class Trace:
    """An append-only list of :class:`RoundRecord` with convenience queries."""

    def __init__(self) -> None:
        self.rounds: list[RoundRecord] = []

    def append(self, record: RoundRecord) -> None:
        self.rounds.append(record)

    def __len__(self) -> int:
        return len(self.rounds)

    def connections_at(self, round_index: int) -> np.ndarray:
        """Connections of a given 1-indexed round."""
        return self.rounds[round_index - 1].connections

    def total_connections(self) -> int:
        """Total connections established over the whole run."""
        return int(sum(r.connections.shape[0] for r in self.rounds))

    def connections_per_round(self) -> np.ndarray:
        """Connection count per recorded round."""
        return np.array([r.connections.shape[0] for r in self.rounds], dtype=np.int64)

    def proposals_per_round(self) -> np.ndarray:
        """Proposal count per recorded round."""
        return np.array([r.proposals.shape[0] for r in self.rounds], dtype=np.int64)

    def cut_connections(self, in_set: np.ndarray) -> np.ndarray:
        """Per-round count of connections crossing the cut ``in_set``.

        ``in_set`` is a boolean mask over nodes; a crossing connection has
        exactly one endpoint inside.  This is the per-round realization of
        the paper's ν(B(S)) capacity argument.
        """
        in_set = np.asarray(in_set, dtype=bool)
        out = np.zeros(len(self.rounds), dtype=np.int64)
        for i, rec in enumerate(self.rounds):
            if rec.connections.size:
                a = in_set[rec.connections[:, 0]]
                b = in_set[rec.connections[:, 1]]
                out[i] = int((a ^ b).sum())
        return out

    def connection_participants_ok(self) -> bool:
        """Model invariant: every node joins at most one connection per round."""
        for rec in self.rounds:
            if rec.connections.size == 0:
                continue
            flat = rec.connections.ravel()
            if np.unique(flat).size != flat.size:
                return False
        return True


class BatchedTrace:
    """Per-round records of a batched engine run over ``T`` replicas.

    The batched engine works on flat ``(replica, pair)`` lists, so each
    round is stored as one batch: parallel replica-index arrays alongside
    the ``(k, 2)`` proposal / connection pair arrays, plus the shared
    activation mask and the (optional) ``(T, n)`` tag grid.
    :meth:`replica` recovers an ordinary :class:`Trace` for one replica,
    bit-compatible with what a single-replica engine records — the form
    the invariant checkers consume.
    """

    def __init__(self, replicas: int, n: int) -> None:
        self.replicas = int(replicas)
        self.n = int(n)
        self.round_indices: list[int] = []
        #: Per round: (k,) replica index of each proposal.
        self.proposal_reps: list[np.ndarray] = []
        #: Per round: (k, 2) ``(sender, target)`` proposals (local vertex ids).
        self.proposals: list[np.ndarray] = []
        #: Per round: (c,) replica index of each connection.
        self.connection_reps: list[np.ndarray] = []
        #: Per round: (c, 2) ``(sender, receiver)`` connections (local ids).
        self.connections: list[np.ndarray] = []
        #: Per round: (T, n) advertised tags, or None for b = 0 algorithms.
        self.tags: list[np.ndarray | None] = []
        #: Per round: (n,) activation mask (shared by all replicas).
        self.active: list[np.ndarray] = []

    def append_round(
        self,
        round_index: int,
        sflat: np.ndarray,
        tflat: np.ndarray,
        win_flat: np.ndarray | None,
        acc_flat: np.ndarray | None,
        tags: np.ndarray | None,
        active: np.ndarray,
    ) -> None:
        """Record one round from the engine's flat ``t*n + v`` id arrays."""
        n = self.n
        self.round_indices.append(round_index)
        self.proposal_reps.append((sflat // n).astype(np.int64))
        self.proposals.append(
            np.column_stack([sflat % n, tflat % n]).astype(np.int64).reshape(-1, 2)
        )
        if acc_flat is None or win_flat is None:
            self.connection_reps.append(np.empty(0, dtype=np.int64))
            self.connections.append(np.empty((0, 2), dtype=np.int64))
        else:
            self.connection_reps.append((acc_flat // n).astype(np.int64))
            self.connections.append(
                np.column_stack([win_flat % n, acc_flat % n])
                .astype(np.int64)
                .reshape(-1, 2)
            )
        self.tags.append(None if tags is None else np.array(tags, dtype=np.int64))
        self.active.append(np.array(active, dtype=bool))

    def __len__(self) -> int:
        return len(self.round_indices)

    def replica(self, t: int) -> Trace:
        """The :class:`Trace` view of replica ``t`` (one record per round).

        Tags follow the single-engine convention: ``-1`` for inactive
        nodes, and ``0`` for active nodes of ``b = 0`` algorithms (which
        advertise nothing; the batched engine skips materializing their
        all-zero tag grid).
        """
        if not 0 <= t < self.replicas:
            raise IndexError(f"replica {t} out of range [0, {self.replicas})")
        trace = Trace()
        for i, r in enumerate(self.round_indices):
            active = self.active[i]
            grid = self.tags[i]
            row = np.zeros(self.n, dtype=np.int64) if grid is None else grid[t]
            sel = self.proposal_reps[i] == t
            csel = self.connection_reps[i] == t
            trace.append(
                RoundRecord(
                    round_index=r,
                    proposals=self.proposals[i][sel],
                    connections=self.connections[i][csel],
                    tags=np.where(active, row, -1),
                    active=active.copy(),
                )
            )
        return trace


def traces_equal(a: Trace, b: Trace) -> bool:
    """Whether two traces are bit-for-bit identical, round for round."""
    if len(a) != len(b):
        return False
    for ra, rb in zip(a.rounds, b.rounds):
        if ra.round_index != rb.round_index:
            return False
        if not (
            np.array_equal(ra.proposals, rb.proposals)
            and np.array_equal(ra.connections, rb.connections)
            and np.array_equal(ra.tags, rb.tags)
            and np.array_equal(ra.active, rb.active)
        ):
            return False
    return True


@dataclass
class RunResult:
    """Outcome of one engine run.

    Attributes
    ----------
    stabilized
        Whether the stop predicate was satisfied within the horizon.
    rounds
        Rounds executed until stabilization (or the horizon if not).
    rounds_after_last_activation
        Same, counted from the last node's activation round — the metric
        Theorem VIII.2 is stated in.  Equals ``rounds`` for synchronized
        starts.
    trace
        Optional attached :class:`Trace`.
    """

    stabilized: bool
    rounds: int
    rounds_after_last_activation: int
    trace: Trace | None = None


@dataclass(frozen=True)
class BatchedRunResult:
    """Per-replica outcomes of one :class:`~repro.core.batched.BatchedVectorizedEngine` run.

    Array analogue of :class:`RunResult` over the replica axis: entry ``t``
    describes replica ``t`` exactly as a :class:`RunResult` would describe
    the corresponding single-replica run.
    """

    #: ``(T,)`` bool — whether each replica stabilized within the horizon.
    stabilized: np.ndarray
    #: ``(T,)`` int — rounds until stabilization (or the horizon).
    rounds: np.ndarray
    #: ``(T,)`` int — rounds counted from the last activation round.
    rounds_after_last_activation: np.ndarray
    #: Optional attached :class:`BatchedTrace`.
    trace: "BatchedTrace | None" = None

    @property
    def replicas(self) -> int:
        return int(self.stabilized.shape[0])

    def replica(self, t: int) -> RunResult:
        """The ``RunResult`` view of replica ``t``."""
        return RunResult(
            stabilized=bool(self.stabilized[t]),
            rounds=int(self.rounds[t]),
            rounds_after_last_activation=int(self.rounds_after_last_activation[t]),
            trace=None if self.trace is None else self.trace.replica(t),
        )
