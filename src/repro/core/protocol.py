"""The per-node protocol interface for the reference engine.

A round of the mobile telephone model (paper Section III) proceeds:

1. every active node picks a ``b``-bit **tag** (:meth:`NodeProtocol.choose_tag`);
2. every node **scans**: it learns its neighbor ids and their tags
   (:class:`RoundView`);
3. every node either **sends** one connection proposal to a chosen
   neighbor or elects to **receive** (:meth:`NodeProtocol.decide`);
4. a receiving node with at least one incoming proposal accepts one
   uniformly at random; a node that proposed cannot accept;
5. each connected pair exchanges one :class:`~repro.core.payload.Message`
   each way (:meth:`NodeProtocol.compose` / :meth:`NodeProtocol.deliver`);
6. every node finishes the round (:meth:`NodeProtocol.end_round`).

The engine — not the protocol — enforces the model rules: tag width, one
connection per node, proposals only to current neighbors, payload budgets.
Protocols are written like the paper's pseudocode and stay oblivious to
``τ`` (algorithms require no advance knowledge of the stability factor).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.core.payload import Message, UID

__all__ = ["RoundView", "NodeProtocol", "LeaderElectionProtocol", "RumorProtocol"]


@dataclass(frozen=True)
class RoundView:
    """What a node sees after the scan, before deciding.

    Attributes
    ----------
    local_round
        The node's local round counter (1-indexed from its activation; for
        synchronized starts this equals the global round).
    neighbors
        Ids of currently active neighbors.
    neighbor_tags
        Their advertised tags, aligned with ``neighbors`` (all zeros when
        ``b = 0`` — no information is conveyable).
    rng
        The node's private generator for this round's choices.
    """

    local_round: int
    neighbors: np.ndarray
    neighbor_tags: np.ndarray
    rng: np.random.Generator


class NodeProtocol(ABC):
    """Base class for per-node algorithm implementations.

    Subclasses must set :attr:`tag_length` (the ``b`` they require) and
    implement the round hooks.  A protocol instance belongs to one vertex
    and holds that node's entire local state.
    """

    #: Advertising tag length ``b`` this protocol requires.
    tag_length: int = 0

    def __init__(self, node_id: int, uid: UID):
        self.node_id = node_id
        self.uid = uid

    # -- round hooks -------------------------------------------------------

    def choose_tag(self, local_round: int, rng: np.random.Generator) -> int:
        """Tag to advertise this round (must fit in ``tag_length`` bits)."""
        return 0

    @abstractmethod
    def decide(self, view: RoundView) -> int | None:
        """Return a neighbor id to propose to, or ``None`` to receive."""

    @abstractmethod
    def compose(self, peer: int) -> Message:
        """Message for the peer after a connection is established."""

    @abstractmethod
    def deliver(self, peer: int, message: Message) -> None:
        """Handle the peer's message over an established connection."""

    def end_round(self) -> None:
        """Finish the round (state transitions not tied to a connection)."""

    # -- fault hooks (repro.faults) ----------------------------------------

    def reset(self) -> None:
        """Restore the node's initial state (crash/rejoin with reset).

        Called by the engine when a :class:`~repro.faults.plan.CrashWindow`
        with ``reset_on_rejoin`` ends — the node rebooted and lost its
        volatile state.  The default raises: a protocol must opt in
        explicitly so unsupported fault plans fail loudly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement crash/rejoin reset"
        )

    def corrupt(self, rng: np.random.Generator, n: int) -> None:
        """Overwrite this node's state with arbitrary values.

        Called by the engine for
        :class:`~repro.faults.plan.StateCorruptionEvent` victims; ``n``
        is the network size, giving replacement draws the simulator's
        key scale (UID keys live in ``[0, 10n)``).  Implementations must
        match the distribution of their vectorized counterpart's
        ``corrupt_state`` so the engine tiers stay cross-validatable.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state corruption"
        )


class LeaderElectionProtocol(NodeProtocol):
    """A protocol that maintains the problem's ``leader`` variable."""

    @property
    @abstractmethod
    def leader(self) -> UID:
        """Current value of this node's ``leader`` variable."""


class RumorProtocol(NodeProtocol):
    """A protocol for rumor spreading (Section V)."""

    @property
    @abstractmethod
    def informed(self) -> bool:
        """Whether this node currently knows the rumor."""
