"""UIDs, ID pairs, and connection payload accounting.

The leader election problem (paper Section IV) treats UIDs as *comparable
black boxes*: algorithms may compare two UIDs and ship them through
connections, but may not inspect their encoding.  :class:`UID` enforces
this — it supports ordering and equality only, and :class:`UIDSpace` mints
UIDs whose hidden keys are randomly permuted so nothing can be inferred
from vertex indices.

A connection may carry at most ``O(1)`` UIDs and ``O(polylog N)`` extra
bits per round; :class:`Message` declares its contents and
:class:`PayloadBudget` enforces the limits at the engine boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import total_ordering
from typing import Iterable

import numpy as np

from repro.util.rng import make_rng

__all__ = ["UID", "UIDSpace", "IDPair", "Message", "PayloadBudget", "BudgetExceeded"]


@total_ordering
class UID:
    """Opaque, totally-ordered unique identifier.

    Only comparison (and hashing, for bookkeeping) is exposed; the hidden
    key is inaccessible to algorithm code by convention and shielded from
    accidental use by the underscore API.  The simulator's trusted
    components (engines, monitors) may read :attr:`_key` to check results.
    """

    __slots__ = ("_key",)

    def __init__(self, key: int):
        self._key = int(key)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UID):
            return NotImplemented
        return self._key == other._key

    def __lt__(self, other: "UID") -> bool:
        if not isinstance(other, UID):
            return NotImplemented
        return self._key < other._key

    def __hash__(self) -> int:
        return hash(("UID", self._key))

    def __repr__(self) -> str:
        return f"UID(#{self._key})"


class UIDSpace:
    """Mints the UIDs of a network, hiding any vertex-index correlation.

    The ``n`` UIDs are backed by a random permutation of ``0..n-1`` (scaled
    into a sparse key space), so vertex 0 is *not* systematically the
    smallest — algorithms must genuinely elect rather than exploit layout.
    """

    def __init__(self, n: int, seed: int | None = None):
        if n < 1:
            raise ValueError("need at least one UID")
        rng = make_rng(seed, "uid-space")
        # Sparse keys: random distinct values, then shuffled across vertices.
        keys = rng.choice(np.arange(10 * n, dtype=np.int64), size=n, replace=False)
        self._keys = keys
        self._uids = [UID(int(k)) for k in keys]

    def __len__(self) -> int:
        return len(self._uids)

    def uid_of(self, vertex: int) -> UID:
        """The UID assigned to ``vertex``."""
        return self._uids[vertex]

    def all_uids(self) -> list[UID]:
        """UIDs indexed by vertex."""
        return list(self._uids)

    def winner_vertex(self) -> int:
        """Vertex holding the minimum UID (the eventual leader)."""
        return int(np.argmin(self._keys))

    def min_uid(self) -> UID:
        """The smallest UID in the network."""
        return self._uids[self.winner_vertex()]


@total_ordering
@dataclass(frozen=True)
class IDPair:
    """An ``(UID, tag)`` pair as used by bit convergence (Section VII).

    Ordered by tag first, breaking ties by UID — exactly the paper's rule
    for choosing the *smallest ID pair*.
    """

    uid: UID
    tag: int

    def __lt__(self, other: "IDPair") -> bool:
        if not isinstance(other, IDPair):
            return NotImplemented
        return (self.tag, self.uid) < (other.tag, other.uid)


@dataclass(frozen=True)
class Message:
    """Contents shipped over one connection, with declared extra bits.

    ``uids`` counts against the per-connection UID budget; ``extra_bits``
    declares the size of everything else (tags, counters).  ``data`` is the
    semantic payload interpreted by the receiving protocol.
    """

    uids: tuple[UID, ...] = ()
    extra_bits: int = 0
    data: object = None


class BudgetExceeded(ValueError):
    """A message exceeded the per-connection communication budget."""


@dataclass(frozen=True)
class PayloadBudget:
    """Per-connection budget: ``max_uids`` UIDs + ``c·log^κ N`` extra bits."""

    n_upper: int
    max_uids: int = 4
    polylog_power: int = 2
    polylog_constant: float = 8.0

    @property
    def max_extra_bits(self) -> int:
        """Extra-bit allowance ``c · (log N)^κ``."""
        logn = max(1.0, math.log2(max(self.n_upper, 2)))
        return int(math.ceil(self.polylog_constant * logn**self.polylog_power))

    def validate(self, message: Message) -> None:
        """Raise :class:`BudgetExceeded` if ``message`` is over budget."""
        if len(message.uids) > self.max_uids:
            raise BudgetExceeded(
                f"message carries {len(message.uids)} UIDs, budget is {self.max_uids}"
            )
        if message.extra_bits > self.max_extra_bits:
            raise BudgetExceeded(
                f"message declares {message.extra_bits} extra bits, "
                f"budget is {self.max_extra_bits}"
            )
