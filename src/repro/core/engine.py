"""Reference round engine for the mobile telephone model.

This engine executes :class:`~repro.core.protocol.NodeProtocol` instances
with straightforward per-node Python loops, implementing the model of
paper Section III *literally*:

* the topology of round ``r`` comes from a dynamic graph honouring ``τ``;
* every active node advertises a ``b``-bit tag, scans (learning active
  neighbors and their tags), then proposes to one neighbor or listens;
* a node that proposed cannot accept; a listening node with incoming
  proposals accepts exactly one chosen uniformly at random;
* each connected pair exchanges one budget-checked message per direction;
* nodes may activate at different rounds (Section VIII); inactive nodes
  are invisible to the scan and cannot be proposed to.

The engine is the semantic ground truth: the vectorized engine
(:mod:`repro.core.vectorized`) is cross-validated against it.  Use this
one for clarity and invariants, the vectorized one for parameter sweeps.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.payload import Message, PayloadBudget
from repro.core.protocol import NodeProtocol, RoundView
from repro.core.trace import RoundRecord, RunResult, Trace
from repro.graphs.dynamic import DynamicGraph
from repro.util.rng import make_rng, spawn_rngs

__all__ = ["ReferenceEngine", "ModelViolation"]


class ModelViolation(RuntimeError):
    """A protocol broke a rule of the mobile telephone model."""


class ReferenceEngine:
    """Executes node protocols over a dynamic graph, round by round.

    Parameters
    ----------
    dynamic_graph
        Topology source (must stay connected; ``τ`` contract assumed).
    protocols
        One protocol per vertex, index-aligned.
    seed
        Root seed; node and engine streams are derived from it.
    activation_rounds
        1-indexed activation round per node (default: all activate in
        round 1).  A node participates from its activation round onward.
    budget
        Per-connection payload budget (default: the Section IV budget for
        ``N = n``).
    collect_trace
        Record a full :class:`~repro.core.trace.Trace` (slower).
    fault_plan
        Optional :class:`~repro.faults.plan.FaultPlan` applied at the
        standard hook points (see :mod:`repro.faults.plan`); an empty
        plan is normalized away and costs nothing.
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        protocols: Sequence[NodeProtocol],
        *,
        seed: int | None = None,
        activation_rounds: Sequence[int] | None = None,
        budget: PayloadBudget | None = None,
        collect_trace: bool = False,
        fault_plan=None,
    ):
        n = dynamic_graph.n
        if len(protocols) != n:
            raise ValueError(f"need {n} protocols, got {len(protocols)}")
        self.dg = dynamic_graph
        self.protocols = list(protocols)
        self.n = n
        self.budget = budget or PayloadBudget(n_upper=max(n, 2))
        if activation_rounds is None:
            self.activation = np.ones(n, dtype=np.int64)
        else:
            self.activation = np.asarray(activation_rounds, dtype=np.int64)
            if self.activation.shape != (n,) or self.activation.min() < 1:
                raise ValueError("activation_rounds must be n 1-indexed rounds")
        self._node_rngs = spawn_rngs(seed, n, "node")
        self._engine_rng = make_rng(seed, "engine")
        # An empty plan normalizes to no plan: the fault stream (its own
        # "faults" label off the seed) is then never created, keeping the
        # faultless path bit-for-bit unchanged.
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None
        if fault_plan is not None:
            from repro.faults.apply import SingleFaultState

            self._faults = SingleFaultState(
                fault_plan,
                n,
                make_rng(seed, "faults"),
                tag_length=max(p.tag_length for p in self.protocols),
            )
        else:
            self._faults = None
        self.trace = Trace() if collect_trace else None
        self.rounds_executed = 0
        #: Cumulative connections established (2 messages each).
        self.connections_made = 0
        #: Live/active mask of the most recent round (``None`` before the
        #: first).  Open-world monitors read it after each ``step``.
        self.last_active: np.ndarray | None = None

    # -- single round -------------------------------------------------------

    def _tag_width_ok(self, proto: NodeProtocol, tag: int) -> bool:
        if proto.tag_length == 0:
            return tag == 0
        return 0 <= tag < (1 << proto.tag_length)

    def step(self, r: int) -> None:
        """Execute global round ``r`` (1-indexed)."""
        from repro.core.protocol import RumorProtocol
        from repro.graphs.adversary import AdaptiveDynamicGraph

        faults = self._faults
        if isinstance(self.dg, AdaptiveDynamicGraph):
            # The reference engine exposes the informed mask for rumor
            # protocols; other protocols expose nothing.
            obs = None
            if all(isinstance(p, RumorProtocol) for p in self.protocols):
                obs = np.array([p.informed for p in self.protocols], dtype=bool)
                if faults is not None:
                    # Dead slots are invisible: the adversary may not
                    # react to state frozen in a crashed/departed slot.
                    up = faults.up_mask(r)
                    if up is not None:
                        obs = obs & up
            self.dg.observe(r, obs)
        graph = self.dg.graph_at(r)
        active = self.activation <= r
        if faults is not None:
            # Start-of-round fault events: rejoin resets, then corruption.
            for v in faults.rejoin_resets(r):
                self.protocols[v].reset()
            for victims in faults.corruption_victims(r):
                for v in victims:
                    self.protocols[v].corrupt(faults.rng, self.n)
            up = faults.up_mask(r)
            if up is not None:
                active = active & up
        #: Final live/active mask of this round (monitors read it).
        self.last_active = active
        tags = np.full(self.n, -1, dtype=np.int64)

        # 1. Tag selection happens before the scan (paper Section III).
        for u in np.flatnonzero(active):
            proto = self.protocols[u]
            local_round = int(r - self.activation[u] + 1)
            tag = proto.choose_tag(local_round, self._node_rngs[u])
            if not self._tag_width_ok(proto, tag):
                raise ModelViolation(
                    f"node {u} advertised tag {tag} outside {proto.tag_length} bits"
                )
            tags[u] = tag

        if faults is not None:
            # Corrupt at the advertiser's radio: the node chose its tag
            # normally; every scanner observes the corrupted value.
            tags = faults.corrupt_tags(tags, active)

        # 2-3. Scan and decide.
        proposals: list[tuple[int, int]] = []
        proposed = np.zeros(self.n, dtype=bool)
        for u in np.flatnonzero(active):
            proto = self.protocols[u]
            nbrs = graph.neighbors(int(u))
            nbrs = nbrs[active[nbrs]]
            view = RoundView(
                local_round=int(r - self.activation[u] + 1),
                neighbors=nbrs,
                neighbor_tags=tags[nbrs],
                rng=self._node_rngs[u],
            )
            target = proto.decide(view)
            if target is None:
                continue
            target = int(target)
            # nbrs is sorted (CSR adjacency, order preserved by the
            # active filter), so membership is a binary search.
            pos = int(np.searchsorted(nbrs, target))
            if pos == nbrs.size or int(nbrs[pos]) != target:
                raise ModelViolation(
                    f"node {u} proposed to {target}, not an active neighbor in round {r}"
                )
            proposals.append((int(u), target))
            proposed[u] = True

        # 4. Acceptance: a proposer cannot receive; listeners accept one
        #    incoming proposal uniformly at random.
        incoming: dict[int, list[int]] = {}
        for s, t in proposals:
            if not proposed[t]:
                incoming.setdefault(t, []).append(s)
        connections: list[tuple[int, int]] = []
        for t in sorted(incoming):
            senders = incoming[t]
            pick = senders[int(self._engine_rng.integers(0, len(senders)))]
            connections.append((pick, t))

        if faults is not None and connections:
            # Established connections drop before the payload exchange;
            # connections_made counts only survivors.
            keep = faults.connection_keep(len(connections))
            if keep is not None:
                connections = [c for c, k in zip(connections, keep) if k]

        # 5. Bounded symmetric exchange per connection.
        self.connections_made += len(connections)
        for s, t in connections:
            msg_s = self.protocols[s].compose(t)
            msg_t = self.protocols[t].compose(s)
            for m, owner in ((msg_s, s), (msg_t, t)):
                if not isinstance(m, Message):
                    raise ModelViolation(f"node {owner} composed a non-Message")
                self.budget.validate(m)
            self.protocols[s].deliver(t, msg_t)
            self.protocols[t].deliver(s, msg_s)

        # 6. Round end hooks.
        for u in np.flatnonzero(active):
            self.protocols[u].end_round()

        if self.trace is not None:
            self.trace.append(
                RoundRecord(
                    round_index=r,
                    proposals=np.asarray(proposals, dtype=np.int64).reshape(-1, 2),
                    connections=np.asarray(connections, dtype=np.int64).reshape(-1, 2),
                    tags=tags.copy(),
                    active=active.copy(),
                )
            )

    # -- full runs ------------------------------------------------------------

    def run(
        self,
        max_rounds: int,
        stop_when: Callable[[list[NodeProtocol]], bool],
        *,
        check_every: int = 1,
        quiescent_stop: bool = False,
    ) -> RunResult:
        """Run until ``stop_when(protocols)`` or ``max_rounds``.

        The predicate must describe an *absorbing* condition of the
        algorithm (e.g. every node holds the eventual leader) so that
        checking it every ``check_every`` rounds cannot miss stabilization
        permanently — it only quantizes the reported round count.

        ``quiescent_stop=True`` additionally asserts that once the
        predicate holds, every later round is a global no-op (the system
        is at a state fixed point — true for e.g. blind gossip, where all
        further exchanges trade identical minima).  The engine then
        checks the predicate every round and, on success between
        checkpoints, *burns the remaining rounds arithmetically* instead
        of executing them: the reported round count is exactly what the
        plain loop would report (the next ``check_every`` checkpoint,
        capped at ``max_rounds``), but the skipped no-op rounds cost
        nothing.  Engine RNG state afterwards differs from a plain run
        (the skipped rounds' draws never happen), which is unobservable
        within this run.  Ignored (plain loop) with a fault plan or an
        active trace, which must see every round.

        With a fault plan, checks are suppressed until the plan's quiesce
        round (the last scheduled crash edge or corruption event):
        transient events can make an absorbing predicate momentarily
        true-then-false, so only post-quiesce agreement certifies
        stabilization.  Permanently crashed nodes (``end=None`` windows)
        are excluded from the predicate: their state is frozen forever,
        so counting them would make stabilization unreachable for every
        run in which the winner spreads after the crash.
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        last_activation = int(self.activation.max())
        gate = self._faults.gate if self._faults is not None else 0
        perma = self._faults.perma_down if self._faults is not None else None
        if perma is None:
            observed = self.protocols
        else:
            observed = [self.protocols[v] for v in np.flatnonzero(~perma)]
        fast_forward = (
            quiescent_stop
            and check_every > 1
            and self._faults is None
            and self.trace is None
        )
        for r in range(1, max_rounds + 1):
            self.step(r)
            self.rounds_executed = r
            if r % check_every == 0 and r >= gate and stop_when(observed):
                return RunResult(
                    stabilized=True,
                    rounds=r,
                    rounds_after_last_activation=max(0, r - last_activation + 1),
                    trace=self.trace,
                )
            if fast_forward and stop_when(observed):
                # Quiescent: burn the rounds to the next checkpoint without
                # executing them (they are no-ops by the caller's assertion).
                rounds = min((r // check_every + 1) * check_every, max_rounds)
                self.rounds_executed = rounds
                return RunResult(
                    stabilized=True,
                    rounds=rounds,
                    rounds_after_last_activation=max(0, rounds - last_activation + 1),
                    trace=self.trace,
                )
        stabilized = stop_when(observed)
        return RunResult(
            stabilized=stabilized,
            rounds=max_rounds,
            rounds_after_last_activation=max(0, max_rounds - last_activation + 1),
            trace=self.trace,
        )
