"""Batched multi-replica vectorized engine: T trials as one (T, n) computation.

Every measurement in the harness is a distributional summary over dozens
of independent seeded trials (the paper's guarantees are w.h.p., so the
q90-over-trials is the measurement unit).  :class:`~repro.core.vectorized.VectorizedEngine`
executes one trial per Python round-loop, so a T-trial sweep point pays
the per-round NumPy dispatch overhead T times — the dominant cost at the
small-to-mid ``n`` where most experiments live.

This engine instead executes **T independent replicas of one
configuration simultaneously**: every state array gains a leading replica
axis ``(T, n)``, and each round is a single batch of kernel calls:

1. the algorithm produces per-replica tags ``(T, n)`` and a sender mask;
2. :func:`~repro.util.csrops.batched_random_pick` chooses every sender's
   proposal target in every replica at once (shared CSR topology);
   replicas under *isomorphic churn* (per-replica relabelings of one
   shared base — :class:`~repro.graphs.dynamic.PermutedDynamicGraph`
   lists or a :class:`~repro.graphs.dynamic.BatchedPermutedDynamicGraph`)
   instead route through
   :func:`~repro.util.csrops.batched_permuted_pick`, which picks against
   the one base CSR through per-replica ``(T, n)`` permutations — no
   relabeled graph or stacked CSR is ever built; only genuinely
   structure-changing replicas fall back to
   :func:`~repro.util.csrops.segmented_random_pick` over a
   :func:`~repro.util.csrops.stack_csr` block-diagonal CSR, rebuilt
   incrementally (only the segments whose topology changed);
3. proposals to nodes that themselves proposed are dropped per replica;
4. :func:`~repro.util.csrops.batched_uniform_accept` resolves all
   replicas' acceptances with one sort;
5. the algorithm applies the exchange for the flat (replica, pair) lists.

Replicas that satisfy their convergence predicate are *masked out* (their
senders go silent), so finished replicas stop contributing work while the
stragglers run on — the batch finishes when the slowest replica does.

Randomness: replica ``t``'s **initial state** is derived from trial seed
``seeds[t]`` exactly as the single-replica engine derives it (same
``make_rng(seed, "vec-init")`` labels), so initial states are
bit-for-bit identical to ``T`` separate :class:`VectorizedEngine` runs.
Round randomness comes from one engine-wide stream (keyed off
``seeds[0]`` and the replica count); per-replica slices of that stream
are mutually independent, so replicas remain independent trials — the
engines are cross-validated distributionally, exactly like reference vs
vectorized.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.core.trace import BatchedRunResult, BatchedTrace
from repro.graphs.dynamic import (
    BatchedPermutedDynamicGraph,
    DynamicGraph,
    PermutedDynamicGraph,
    epoch_of_round,
)
from repro.graphs.static import Graph
from repro.util.csrops import (
    batched_permuted_pick,
    batched_random_pick,
    csr_degrees,
    gather_rows,
    invert_permutations,
    segmented_random_pick,
    segmented_uniform_accept_pairs,
    stack_csr,
    unique_nodes,
)
from repro.core.vectorized import (
    _SPARSE_MAX_FRACTION,
    _SPARSE_MIN_N,
    _resolve_sparse_mode,
)
from repro.util.rng import make_rng

__all__ = ["BatchedAlgorithm", "BatchedVectorizedEngine"]


class BatchedAlgorithm(ABC):
    """Replica-batched array-kernel form of an algorithm.

    State is an algorithm-owned object of ``(T, n)`` NumPy arrays; the
    engine threads it through the hooks below.  The single-replica
    counterpart is :class:`~repro.core.vectorized.VectorizedAlgorithm`;
    hooks mirror it with a leading replica axis, except that target
    eligibility is expressed per *vertex* (``receiver_mask``) rather than
    per CSR entry — every ported algorithm's eligibility depends only on
    the target's advertised tag, and a vertex mask batches over distinct
    replica topologies for free.
    """

    #: Advertising tag length ``b`` this algorithm requires.
    tag_length: int = 0

    #: Whether the engine may run sparse-activity rounds for this
    #: algorithm (see :class:`~repro.core.vectorized.VectorizedAlgorithm`
    #: for the contract: per-node absorbing doneness, state changes only
    #: through :meth:`exchange`, done–done exchanges are no-ops, and the
    #: ``sparse_senders_flat`` / ``node_done_subset_flat`` hooks are
    #: implemented).  Sparse-compatible batched algorithms must also have
    #: ``b = 0`` and no receiver mask.
    sparse_compatible: bool = False

    @abstractmethod
    def init_state(self, n: int, seeds: np.ndarray) -> object:
        """Initial ``(T, n)`` state for ``T = len(seeds)`` replicas.

        ``seeds[t]`` is replica ``t``'s trial seed; implementations must
        derive replica ``t``'s initial state exactly as their vectorized
        counterpart does for a single engine built with that seed.
        """

    def tags(
        self,
        state: object,
        local_rounds: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray | None:
        """``(T, n)`` advertised tags (ignored entries for inactive nodes).

        The default ``None`` means "no advertising" (``b = 0``
        algorithms); the engine then skips tag materialization entirely.
        """
        return None

    @abstractmethod
    def senders(
        self,
        state: object,
        tags: np.ndarray,
        local_rounds: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """``(T, n)`` boolean mask of nodes attempting to send a proposal."""

    def receiver_mask(self, state: object, tags: np.ndarray) -> np.ndarray | None:
        """Optional ``(T, n)`` per-vertex eligibility of proposal targets.

        ``None`` means senders choose uniformly among all (active)
        neighbors.
        """
        return None

    @abstractmethod
    def exchange(
        self,
        state: object,
        rep: np.ndarray,
        proposers: np.ndarray,
        acceptors: np.ndarray,
    ) -> None:
        """Apply the exchange for connected pairs across all replicas.

        ``proposers[i]`` connected to ``acceptors[i]`` inside replica
        ``rep[i]`` (flat parallel arrays).
        """

    def end_round(
        self,
        state: object,
        round_index: int,
        local_rounds: np.ndarray,
        active: np.ndarray,
        live: np.ndarray,
    ) -> None:
        """Hook after connections (phase-boundary state transitions)."""

    @abstractmethod
    def converged(self, state: object) -> np.ndarray:
        """``(T,)`` absorbing stabilization predicate per replica."""

    def node_done(self, state: object) -> np.ndarray | None:
        """Optional ``(T, n)`` per-node form of :meth:`converged`.

        ``converged()`` must equal ``node_done().all(axis=1)``.  The
        engine uses the per-node form to exclude permanently crashed
        nodes from stabilization (their state is frozen forever).
        ``None`` (the default) falls back to the whole-network predicate.
        """
        return None

    def sparse_senders_flat(
        self, state: object, flat_rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sender coins for the flat ``t*n + v`` ids in ``flat_rows`` only.

        Must be distribution-equivalent to :meth:`senders` restricted to
        those (replica, vertex) pairs (bit-equivalence with the dense
        path is *not* required — the sparse path consumes the engine
        stream differently by design).  Required when
        ``sparse_compatible`` is true.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement sparse sender coins"
        )

    def node_done_subset_flat(
        self, state: object, flat_rows: np.ndarray, n: int
    ) -> np.ndarray:
        """Doneness of the flat ``t*n + v`` ids in ``flat_rows`` only.

        Default derives from :meth:`node_done`; override with an O(|flat_rows|)
        gather to keep sparse rounds free of (T, n) scans.
        """
        done = self.node_done(state)
        if done is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no per-node doneness; sparse "
                "rounds require node_done or node_done_subset_flat"
            )
        return np.asarray(done, dtype=bool).reshape(-1)[flat_rows]

    def observable(self, state: object) -> np.ndarray | None:
        """``(T, n)`` per-replica adaptive-adversary observation, or ``None``."""
        return None

    # -- fault hooks (repro.faults) ----------------------------------------

    def corrupt_state(
        self, state: object, victims: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Overwrite per-replica ``victims`` (``(T, k)``) with arbitrary values.

        Engine hook for :class:`~repro.faults.plan.StateCorruptionEvent`:
        row ``t`` of ``victims`` lists the ``k`` corrupted vertices of
        replica ``t``.  Implementations must mirror their vectorized
        counterpart's ``corrupt_state`` distribution and recompute any
        convergence target.  The default raises so unsupported fault
        plans fail loudly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state corruption"
        )

    def reset_nodes(
        self, state: object, nodes: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Restore ``nodes`` to their initial state in *every* replica.

        Engine hook for :class:`~repro.faults.plan.CrashWindow` rejoins
        with ``reset_on_rejoin`` — the crash schedule is deterministic
        plan data shared by all replicas (like ``activation_rounds``), so
        the same vertices reset batch-wide.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement crash/rejoin reset"
        )


class BatchedVectorizedEngine:
    """Runs a :class:`BatchedAlgorithm` over T replicas of one configuration.

    Parameters
    ----------
    dynamic_graph
        One :class:`~repro.graphs.dynamic.DynamicGraph` shared by every
        replica (static-topology experiments: one CSR serves the whole
        batch), a sequence of ``T`` per-replica dynamic graphs, or one
        :class:`~repro.graphs.dynamic.BatchedPermutedDynamicGraph`
        (e.g. the batched packing adversary).  A sequence whose members
        are all :class:`~repro.graphs.dynamic.PermutedDynamicGraph`
        instances over the *same base object* with equal ``τ`` takes the
        permutation-native fast path; other sequences are stacked into a
        block-diagonal CSR per round.
    algorithm
        The batched algorithm kernel.
    seeds
        Per-replica trial seeds (the same integers
        :func:`~repro.harness.runner.run_trials` would hand to ``T``
        separate engines).
    activation_rounds
        1-indexed activation round per node, shared by all replicas.
    fault_plan
        Optional :class:`~repro.faults.plan.FaultPlan` applied at the
        standard hook points in every replica (crash schedules are
        shared plan data; probabilistic faults draw per replica from a
        dedicated batch-wide fault stream).  An empty plan is normalized
        away and costs nothing.
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph | Sequence[DynamicGraph],
        algorithm: BatchedAlgorithm,
        *,
        seeds: Sequence[int] | np.ndarray,
        activation_rounds: Sequence[int] | np.ndarray | None = None,
        fault_plan=None,
        collect_trace: bool = False,
        sparse: str | None = None,
    ):
        from repro.graphs.adversary import AdaptiveDynamicGraph

        self.seeds = np.asarray(seeds, dtype=np.int64)
        if self.seeds.ndim != 1 or self.seeds.size == 0:
            raise ValueError("seeds must be a non-empty 1-D sequence")
        self.replicas = int(self.seeds.size)

        self.bdg: BatchedPermutedDynamicGraph | None = None
        self.dg: DynamicGraph | None = None
        self.dgs: list[DynamicGraph] | None = None
        #: Shared base graph of the permutation-native churn fast path
        #: (set for both the batched object and the permuted-list forms).
        self._perm_base: Graph | None = None
        if isinstance(dynamic_graph, BatchedPermutedDynamicGraph):
            if dynamic_graph.replicas != self.replicas:
                raise ValueError(
                    f"batched dynamic graph covers {dynamic_graph.replicas} "
                    f"replicas but {self.replicas} seeds were given"
                )
            self.bdg = dynamic_graph
            self._perm_base = dynamic_graph.base
            self.n = dynamic_graph.n
        elif isinstance(dynamic_graph, DynamicGraph):
            if isinstance(dynamic_graph, AdaptiveDynamicGraph):
                raise ValueError(
                    "an adaptive dynamic graph cannot be shared across "
                    "replicas (observations differ per replica); pass one "
                    "adversary instance per replica"
                )
            self.dg = dynamic_graph
            self.n = dynamic_graph.n
        else:
            dgs = list(dynamic_graph)
            if len(dgs) != self.replicas:
                raise ValueError(
                    f"need one dynamic graph per replica: got {len(dgs)} "
                    f"graphs for {self.replicas} seeds"
                )
            if len({dg.n for dg in dgs}) != 1:
                raise ValueError("all replica graphs must share the vertex count")
            self.dgs = dgs
            self.n = dgs[0].n
            # Permutation-native fast path: every replica relabels the
            # *same base object* on the same epoch schedule, so round
            # topologies are (one shared CSR, T permutations).
            if all(isinstance(dg, PermutedDynamicGraph) for dg in dgs) and all(
                dg.base is dgs[0].base and dg.tau == dgs[0].tau for dg in dgs
            ):
                self._perm_base = dgs[0].base

        self.algo = algorithm
        if activation_rounds is None:
            self.activation = np.ones(self.n, dtype=np.int64)
        else:
            self.activation = np.asarray(activation_rounds, dtype=np.int64)
            if self.activation.shape != (self.n,) or self.activation.min() < 1:
                raise ValueError("activation_rounds must be n 1-indexed rounds")
        self._rng = make_rng(int(self.seeds[0]), "batched-engine", self.replicas)
        # An empty plan normalizes to no plan: the fault stream (its own
        # label off the batch key) is then never created, keeping the
        # faultless hot path bit-for-bit unchanged.
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None
        if fault_plan is not None:
            from repro.faults.apply import BatchedFaultState

            self._faults: BatchedFaultState | None = BatchedFaultState(
                fault_plan,
                self.n,
                self.replicas,
                make_rng(int(self.seeds[0]), "batched-faults", self.replicas),
                tag_length=algorithm.tag_length,
            )
        else:
            self._faults = None
        self.state = self.algo.init_state(self.n, self.seeds)
        #: Optional batched trace; :meth:`BatchedTrace.replica` recovers a
        #: per-replica view in the single-engine record format.
        self.trace = BatchedTrace(self.replicas, self.n) if collect_trace else None
        #: Replicas still running (convergence masking).
        self.live = np.ones(self.replicas, dtype=bool)
        self.rounds_executed = 0
        #: Shared (n,) live/active mask of the most recent round (``None``
        #: before the first).  Open-world monitors read it after ``step``.
        self.last_active: np.ndarray | None = None
        self._all_active: np.ndarray | None = None
        #: Cumulative connections established per replica (2 messages each).
        self.connections_made = np.zeros(self.replicas, dtype=np.int64)
        # Stacked-CSR cache: strong refs to the graphs backing the current
        # stack (identity comparison against *held* objects is sound even
        # if a dynamic graph's epoch cache evicts and ids get reused).
        self._stack_graphs: list[Graph] | None = None
        self._stack: tuple[np.ndarray, np.ndarray] | None = None
        self._stack_nnz_off: np.ndarray | None = None
        self._deg_graph: Graph | None = None
        self._deg: np.ndarray | None = None
        # Permutation cache for the churn fast path: current (T, n)
        # permutations and their inverses, refreshed per epoch (list form)
        # or when the batched object emits a new array (adaptive form).
        self._P: np.ndarray | None = None
        self._Pinv: np.ndarray | None = None
        self._perm_epoch = -1
        self._P_src: np.ndarray | None = None
        # Scratch buffer for the "a proposer cannot receive" rule; touched
        # positions are reset after each round instead of reallocating.
        self._proposed = np.zeros(self.replicas * self.n, dtype=bool)
        # Flat id -> local vertex lookup (a gather beats an integer modulo
        # on the hot path).
        self._row_of = np.tile(np.arange(self.n, dtype=np.int64), self.replicas)
        # Sparse-activity rounds (mirrors VectorizedEngine): eligible only
        # on the shared-single-dynamic-graph path with no faults, no tags,
        # and synchronized activation.  The frontier lives in flat id
        # space; finished replicas drop out automatically because every
        # one of their nodes is done.
        self._sparse_mode = _resolve_sparse_mode(sparse)
        self._sparse_ok = (
            self._sparse_mode != "off"
            and algorithm.sparse_compatible
            and algorithm.tag_length == 0
            and self._faults is None
            and bool((self.activation == 1).all())
            and self.dg is not None
        )
        self._undone_fmask: np.ndarray | None = None
        self._undone_fidx: np.ndarray | None = None

    # -- topology ------------------------------------------------------------

    def _stacked_csr(self, graphs: list[Graph]) -> tuple[np.ndarray, np.ndarray]:
        """Block-diagonal CSR of this round's replica topologies (cached).

        The engine holds strong references to the graphs backing the
        current stack, so ``is`` against them is a sound "unchanged since
        last round" test (an ``id()``-only key could alias a freed graph
        whose id was reused after a dynamic graph's cache eviction).
        Between rounds only the replicas whose epoch actually changed are
        rewritten — an in-place segment patch when the edge count is
        unchanged (always true for isomorphic churn, usually true for
        resampling within a family), a full restack only when a segment's
        edge count changes.
        """
        n = self.n
        prev = self._stack_graphs
        if prev is not None and len(prev) == len(graphs):
            changed = [t for t, g in enumerate(graphs) if g is not prev[t]]
            if not changed:
                assert self._stack is not None
                return self._stack
            off = self._stack_nnz_off
            assert off is not None and self._stack is not None
            if all(
                graphs[t].indptr[-1] == off[t + 1] - off[t] for t in changed
            ):
                indptr_s, indices_s = self._stack
                for t in changed:
                    g = graphs[t]
                    indices_s[off[t] : off[t + 1]] = g.indices + t * n
                    indptr_s[t * n + 1 : (t + 1) * n + 1] = g.indptr[1:] + off[t]
                self._stack_graphs = list(graphs)
                return self._stack
        self._stack = stack_csr([(g.indptr, g.indices) for g in graphs], self.n)
        nnz_off = np.zeros(len(graphs) + 1, dtype=np.int64)
        for t, g in enumerate(graphs):
            nnz_off[t + 1] = nnz_off[t] + g.indptr[-1]
        self._stack_nnz_off = nnz_off
        self._stack_graphs = list(graphs)
        return self._stack

    def _degrees(self, graph: Graph) -> np.ndarray:
        """Vertex degrees of the current shared topology (cached).

        A strong reference to the graph makes the identity test immune to
        id reuse after the dynamic graph's epoch cache evicts.
        """
        if graph is not self._deg_graph:
            self._deg = csr_degrees(graph.indptr)
            self._deg_graph = graph
        assert self._deg is not None
        return self._deg

    def _permutations(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Current ``(T, n)`` relabel permutations and their inverses.

        Refreshed once per epoch on the permuted-list path (``T`` cheap
        ``permutation_at`` calls), or when the batched dynamic graph hands
        back a new array object (adaptive adversaries emit one only at
        epoch boundaries with a changed observation).
        """
        T, n = self.replicas, self.n
        if self.bdg is not None:
            P = self.bdg.permutations_at(r)
            if P is not self._P_src:
                self._P_src = P
                self._P = np.ascontiguousarray(P, dtype=np.int64)
                self._Pinv = invert_permutations(self._P)
        else:
            assert self.dgs is not None
            e = epoch_of_round(r, self.dgs[0].tau)
            if e != self._perm_epoch:
                if self._P is None:
                    self._P = np.empty((T, n), dtype=np.int64)
                for t, dg in enumerate(self.dgs):
                    self._P[t] = dg.permutation_at(r)
                self._Pinv = invert_permutations(self._P)
                self._perm_epoch = e
        assert self._P is not None and self._Pinv is not None
        return self._P, self._Pinv

    # -- sparse-activity rounds ----------------------------------------------

    def _ensure_frontier(self) -> bool:
        """Lazily build the flat undone-node frontier; False disables sparse."""
        if self._undone_fmask is not None:
            return True
        done = self.algo.node_done(self.state)
        if done is None:
            self._sparse_ok = False
            return False
        mask = ~np.asarray(done, dtype=bool).reshape(-1)
        self._undone_fmask = mask
        self._undone_fidx = np.flatnonzero(mask)
        return True

    def _frontier_absorb(self, winners: np.ndarray, acceptors: np.ndarray) -> None:
        """Drop newly done flat ids from the frontier after an exchange.

        Doneness is absorbing and only changes through exchanges (the
        ``sparse_compatible`` contract), so only this round's exchange
        endpoints can have left the undone set.
        """
        mask = self._undone_fmask
        if mask is None:
            return
        parts = np.concatenate([winners, acceptors])
        cand = unique_nodes(parts[mask[parts]])
        if cand.size == 0:
            return
        fin = cand[self.algo.node_done_subset_flat(self.state, cand, self.n)]
        if fin.size:
            mask[fin] = False
            assert self._undone_fidx is not None
            self._undone_fidx = self._undone_fidx[mask[self._undone_fidx]]

    def _gather_flat(self, graph: Graph, flat: np.ndarray) -> np.ndarray:
        """Concatenated flat-id neighbors of the flat ids in ``flat``.

        Replica ``t``'s copy of vertex ``v`` neighbors replica ``t``'s
        copies of ``v``'s neighbors, so the flat adjacency is the shared
        CSR shifted by each id's replica base ``t*n``.
        """
        verts = self._row_of[flat]
        nbrs = gather_rows(graph.indptr, graph.indices, verts)
        deg = self._degrees(graph)
        return nbrs + np.repeat(flat - verts, deg[verts])

    def _try_sparse_step(self, r: int) -> bool:
        """Run round ``r`` via the sparse frontier path if profitable.

        Same exactness argument as
        :meth:`~repro.core.vectorized.VectorizedEngine._try_sparse_step`,
        applied per replica in flat id space: every state-changing
        exchange has an undone endpoint, and the full acceptance
        competition of any node adjacent to the undone set lies inside
        the 2-hop closure, so simulating only that closure (keeping every
        simulated proposal) reproduces the dense state-trajectory
        distribution exactly.  ``connections_made`` may undercount
        passive done–done connections outside the closure.
        """
        if not self._sparse_ok:
            return False
        assert self.dg is not None
        force = self._sparse_mode == "force"
        total = self.replicas * self.n
        if not force and total < _SPARSE_MIN_N:
            return False
        if not self._ensure_frontier():
            return False
        u_idx = self._undone_fidx
        assert u_idx is not None
        limit = _SPARSE_MAX_FRACTION * total
        if not force and u_idx.size > limit:
            return False
        graph = self.dg.graph_at(r)
        reach = unique_nodes(
            np.concatenate([u_idx, self._gather_flat(graph, u_idx)])
        )
        rows = unique_nodes(
            np.concatenate([reach, self._gather_flat(graph, reach)])
        )
        if not force and rows.size > limit:
            return False
        if self._all_active is None:
            self._all_active = np.ones(self.n, dtype=bool)
        # Sparse preconditions (sync activation, no faults) mean every
        # node is live this round.
        self.last_active = self._all_active
        self._sparse_step(r, graph, rows)
        return True

    def _sparse_step(self, r: int, graph: Graph, rows: np.ndarray) -> None:
        """One batched round touching only the flat ids in ``rows``."""
        T, n = self.replicas, self.n
        rng = self._rng
        coins = self.algo.sparse_senders_flat(self.state, rows, rng)
        sflat = rows[coins]
        verts = self._row_of[sflat]
        d = self._degrees(graph)[verts]
        ok = d > 0
        if not ok.all():
            sflat, verts, d = sflat[ok], verts[ok], d[ok]
        if sflat.size:
            offsets = (rng.random(d.size) * d).astype(np.int64)
            tloc = graph.indices[graph.indptr[verts] + offsets]
            tflat = (sflat - verts) + tloc
        else:
            tflat = sflat
        trace = self.trace
        tr_acc = tr_win = None
        if sflat.size:
            proposed = self._proposed
            proposed[sflat] = True
            keep = np.flatnonzero(~proposed[tflat])
            proposed[sflat] = False
            acc_flat, win_flat = segmented_uniform_accept_pairs(
                sflat.take(keep), tflat.take(keep), rng
            )
            if trace is not None:
                tr_acc, tr_win = acc_flat, win_flat
            if acc_flat.size:
                arep = acc_flat // n
                self.connections_made += np.bincount(arep, minlength=T)
                self.algo.exchange(self.state, arep, win_flat % n, acc_flat % n)
                self._frontier_absorb(win_flat, acc_flat)
        # end_round is a contractual no-op for sparse-compatible algorithms.
        if trace is not None:
            trace.append_round(
                r, sflat, tflat, tr_win, tr_acc, None, self.activation <= r
            )

    # -- single round --------------------------------------------------------

    def step(self, r: int) -> None:
        """Execute global round ``r`` (1-indexed) in every live replica."""
        from repro.graphs.adversary import AdaptiveDynamicGraph

        if self._try_sparse_step(r):
            return

        T, n = self.replicas, self.n
        active = self.activation <= r
        local_rounds = np.maximum(r - self.activation + 1, 0)
        rng = self._rng

        faults = self._faults
        if faults is not None:
            # Start-of-round fault events: rejoin resets, then corruption.
            nodes = faults.rejoin_resets(r)
            if nodes.size:
                self.algo.reset_nodes(self.state, nodes, faults.rng)
            for victims in faults.corruption_victims(r):
                self.algo.corrupt_state(self.state, victims, faults.rng)
            up = faults.up_mask(r)
            if up is not None:
                # Crash/membership schedules are shared (n,) plan data, so
                # the mask folds into `active` before the all-active fast
                # path test.
                active = active & up
        else:
            up = None
        #: Final shared live/active mask of this round (monitors read it).
        self.last_active = active

        def _masked_obs():
            obs = self.algo.observable(self.state)
            if obs is not None and up is not None:
                # Dead slots are invisible: the adversary may not react
                # to state frozen in a crashed/departed slot.
                obs = np.asarray(obs) & up[None, :]
            return obs

        if self.bdg is not None:
            self.bdg.observe(r, _masked_obs())
        elif self.dgs is not None and any(
            isinstance(dg, AdaptiveDynamicGraph) for dg in self.dgs
        ):
            obs = _masked_obs()
            for t, dg in enumerate(self.dgs):
                if isinstance(dg, AdaptiveDynamicGraph):
                    dg.observe(r, None if obs is None else obs[t])

        tags = self.algo.tags(self.state, local_rounds, active, rng)
        sender = self.algo.senders(self.state, tags, local_rounds, active, rng)
        sender = sender & self.live[:, None]
        all_active = bool(active.all())
        if not all_active:
            sender &= active[None, :]
        if faults is not None and tags is not None:
            # Corrupt at the advertiser's radio: the sender decision used
            # the intended tag; receiver eligibility sees the corrupted one.
            tags = faults.corrupt_tags(tags, active)
        recv = self.algo.receiver_mask(self.state, tags)

        # Target eligibility per vertex: must be active; algorithms may
        # restrict further.  All-active with no algorithm mask takes the
        # unmasked (fastest) kernel path.
        if recv is not None:
            nb_mask = recv if all_active else (recv & active[None, :])
        elif all_active:
            nb_mask = None
        else:
            nb_mask = np.broadcast_to(active, (T, n))

        # The hot path works on compact flat (replica, vertex) ids
        # (flat id = t*n + v): one flatnonzero pass over the batch instead
        # of dense (T, n) intermediates re-scanned at every stage.
        if self._perm_base is not None:
            # Isomorphic churn: pick through per-replica permutations
            # against the one shared base CSR.
            P, Pinv = self._permutations(r)
            base = self._perm_base
            sflat, tflat = batched_permuted_pick(
                base.indptr,
                base.indices,
                rng,
                P,
                sender,
                neighbor_mask=nb_mask,
                perm_inv=Pinv,
            )
        elif self.dg is not None:
            graph = self.dg.graph_at(r)
            if nb_mask is None:
                # Unmasked shared CSR: gather each sender's degree and
                # draw its neighbor offset directly — no pick grid at all.
                sflat = np.flatnonzero(sender)
                rows = self._row_of[sflat]
                d = self._degrees(graph)[rows]
                ok = d > 0
                if not ok.all():
                    sflat, rows, d = sflat[ok], rows[ok], d[ok]
                if sflat.size:
                    # floor(u * d) for u ~ U[0, 1): uniform over [0, d)
                    # up to an O(d / 2^53) rounding bias — immaterial
                    # here, and roughly half the cost of a per-element
                    # bounded integer draw.
                    offsets = (rng.random(d.size) * d).astype(np.int64)
                    tloc = graph.indices[graph.indptr[rows] + offsets]
                    tflat = (sflat - rows) + tloc
                else:
                    tflat = sflat
            else:
                picks = batched_random_pick(
                    graph.indptr, graph.indices, rng, sender, neighbor_mask=nb_mask
                )
                pf = picks.reshape(T * n)
                sflat = np.flatnonzero(pf >= 0)
                tflat = (sflat - self._row_of[sflat]) + pf[sflat]
        else:
            assert self.dgs is not None
            indptr_s, indices_s = self._stacked_csr(
                [dg.graph_at(r) for dg in self.dgs]
            )
            flat_nb = None if nb_mask is None else np.ascontiguousarray(nb_mask).reshape(T * n)
            flat_picks = segmented_random_pick(
                indptr_s,
                indices_s,
                rng,
                active=np.ascontiguousarray(sender).reshape(T * n),
                neighbor_mask=flat_nb,
            )
            # Stacked vertex ids are already flat t*n + v ids.
            sflat = np.flatnonzero(flat_picks >= 0)
            tflat = flat_picks[sflat]

        trace = self.trace
        tr_acc = tr_win = None
        if sflat.size:
            # A node that issued a proposal cannot receive one (per replica).
            proposed = self._proposed
            proposed[sflat] = True
            keep = np.flatnonzero(~proposed[tflat])
            proposed[sflat] = False  # reset only the touched scratch entries
            acc_flat, win_flat = segmented_uniform_accept_pairs(
                sflat.take(keep), tflat.take(keep), rng
            )
            if faults is not None and acc_flat.size:
                # Established connections drop before the payload exchange;
                # connections_made counts only survivors.
                keepc = faults.connection_keep(acc_flat.size)
                if keepc is not None:
                    acc_flat, win_flat = acc_flat[keepc], win_flat[keepc]
            if trace is not None:
                tr_acc, tr_win = acc_flat, win_flat
            if acc_flat.size:
                arep = acc_flat // n
                self.connections_made += np.bincount(arep, minlength=T)
                self.algo.exchange(self.state, arep, win_flat % n, acc_flat % n)
                # Keep the sparse frontier current across dense rounds
                # (no-op until a sparse round has materialized it).
                self._frontier_absorb(win_flat, acc_flat)

        self.algo.end_round(self.state, r, local_rounds, active, self.live)

        if trace is not None:
            trace.append_round(r, sflat, tflat, tr_win, tr_acc, tags, active)

    # -- full runs -----------------------------------------------------------

    def run(self, max_rounds: int, *, check_every: int = 1) -> BatchedRunResult:
        """Run until every replica's convergence predicate or ``max_rounds``.

        With a fault plan, convergence checks are suppressed until the
        plan's quiesce round (see
        :meth:`repro.faults.plan.FaultPlan.quiesce_round`): transient
        events can make an absorbing predicate momentarily
        true-then-false, so only post-quiesce agreement certifies
        stabilization.
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        T = self.replicas
        last_activation = int(self.activation.max())
        gate = self._faults.gate if self._faults is not None else 0
        perma = self._faults.perma_down if self._faults is not None else None
        if perma is None:
            converged = lambda: np.asarray(  # noqa: E731
                self.algo.converged(self.state), dtype=bool
            )
        else:
            # Permanently crashed nodes are frozen forever; stabilization
            # is agreement among the nodes that can still change state.
            live_nodes = ~perma

            def converged() -> np.ndarray:
                done = self.algo.node_done(self.state)
                if done is None:
                    return np.asarray(self.algo.converged(self.state), dtype=bool)
                return np.asarray(done, dtype=bool)[:, live_nodes].all(axis=1)

        rounds = np.full(T, max_rounds, dtype=np.int64)
        stabilized = np.zeros(T, dtype=bool)
        for r in range(1, max_rounds + 1):
            self.step(r)
            self.rounds_executed = r
            if r % check_every == 0 and r >= gate:
                conv = converged()
                newly = self.live & conv
                if newly.any():
                    rounds[newly] = r
                    stabilized[newly] = True
                    self.live = self.live & ~conv
                    if not self.live.any():
                        break
        if self.live.any() and max_rounds >= gate:
            # Horizon reached: replicas converging on the final round
            # outside the check stride still count, as in the single engine.
            conv = converged()
            stabilized[self.live & conv] = True
        return BatchedRunResult(
            stabilized=stabilized,
            rounds=rounds,
            rounds_after_last_activation=np.maximum(
                0, rounds - last_activation + 1
            ),
            trace=self.trace,
        )
