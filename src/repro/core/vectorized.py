"""Vectorized round engine for parameter sweeps.

Semantically identical to :class:`~repro.core.engine.ReferenceEngine` but
the round is executed as a handful of NumPy array operations (the
profiling-guided optimization of the per-node loops):

1. the algorithm produces per-node tags and a sender mask;
2. :func:`~repro.util.csrops.segmented_random_pick` chooses each sender's
   proposal target uniformly among its eligible neighbors;
3. proposals to nodes that themselves (effectively) proposed are dropped —
   a proposer cannot receive;
4. :func:`~repro.util.csrops.segmented_uniform_accept` has each remaining
   target accept one proposal uniformly at random;
5. the algorithm applies the state exchange for the connected pairs.

Algorithms plug in via :class:`VectorizedAlgorithm`, operating on a state
object of NumPy arrays.  Each algorithm in :mod:`repro.algorithms` ships
both a per-node protocol (reference semantics) and one of these kernels;
the test suite cross-validates the two statistically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.trace import RoundRecord, RunResult, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.faults.plan import FaultPlan
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.static import Graph
from repro.util.csrops import segmented_random_pick, segmented_uniform_accept
from repro.util.rng import make_rng

__all__ = ["VectorizedAlgorithm", "VectorizedEngine"]


class VectorizedAlgorithm(ABC):
    """Array-kernel form of an algorithm for :class:`VectorizedEngine`.

    State is an algorithm-owned object (typically a small namespace of
    NumPy arrays); the engine threads it through the hooks below.
    """

    #: Advertising tag length ``b`` this algorithm requires.
    tag_length: int = 0

    @abstractmethod
    def init_state(self, n: int, rng: np.random.Generator) -> object:
        """Initial per-network state for ``n`` nodes."""

    @abstractmethod
    def tags(
        self,
        state: object,
        local_rounds: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advertised tag per node (ignored entries for inactive nodes)."""

    @abstractmethod
    def senders(
        self,
        state: object,
        tags: np.ndarray,
        local_rounds: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean mask of nodes that attempt to send a proposal."""

    def eligible_flat(
        self,
        state: object,
        tags: np.ndarray,
        graph: Graph,
        sender_mask: np.ndarray,
        local_rounds: np.ndarray,
    ) -> np.ndarray | None:
        """Optional per-CSR-entry eligibility mask for proposal targets.

        ``None`` means senders choose uniformly among all (active)
        neighbors.  Entry ``i`` of the returned array corresponds to the
        CSR entry ``graph.indices[i]`` in the row of its source vertex.
        """
        return None

    @abstractmethod
    def exchange(
        self, state: object, proposers: np.ndarray, acceptors: np.ndarray
    ) -> None:
        """Apply the symmetric message exchange for the connected pairs."""

    def end_round(
        self,
        state: object,
        round_index: int,
        local_rounds: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Hook after connections (phase-boundary state transitions)."""

    @abstractmethod
    def converged(self, state: object) -> bool:
        """Absorbing stabilization predicate over the current state."""

    def node_done(self, state: object) -> np.ndarray | None:
        """Optional ``(n,)`` per-node form of :meth:`converged`.

        ``converged()`` must equal ``node_done().all()``.  Engines use the
        per-node form to exclude permanently crashed nodes (their state is
        frozen, so demanding their agreement would make stabilization
        unreachable).  ``None`` (the default) means the predicate has no
        per-node decomposition; permanent-crash plans then fall back to
        the whole-network predicate.
        """
        return None

    # -- fault hooks (repro.faults) ----------------------------------------

    def corrupt_state(
        self, state: object, victims: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Overwrite ``victims``' state with arbitrary values.

        Engine hook for :class:`~repro.faults.plan.StateCorruptionEvent`:
        the implementation must replace the victims' algorithm state with
        values drawn from ``rng`` and recompute its convergence target
        over the corrupted state (the semilattice the algorithm computes
        over).  The default raises so unsupported fault plans fail loudly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state corruption"
        )

    def reset_nodes(
        self, state: object, nodes: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Restore ``nodes`` to their initial state (crash/rejoin reset).

        Engine hook for :class:`~repro.faults.plan.CrashWindow` rejoins
        with ``reset_on_rejoin``; implementations must also refresh their
        convergence target if the reset can change it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement crash/rejoin reset"
        )

    def observable(self, state: object) -> object | None:
        """What an adaptive adversary may observe each round.

        Spreading-type algorithms return their boolean progress mask (the
        informed set, or "holds the eventual winner"); ``None`` exposes
        nothing.  Consumed by
        :class:`repro.graphs.adversary.AdaptiveDynamicGraph`.
        """
        return None


class VectorizedEngine:
    """Runs a :class:`VectorizedAlgorithm` over a dynamic graph."""

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        algorithm: VectorizedAlgorithm,
        *,
        seed: int | None = None,
        activation_rounds: Sequence[int] | np.ndarray | None = None,
        fault_plan: "FaultPlan | None" = None,
        collect_trace: bool = False,
    ):
        self.dg = dynamic_graph
        self.algo = algorithm
        self.n = dynamic_graph.n
        if activation_rounds is None:
            self.activation = np.ones(self.n, dtype=np.int64)
        else:
            self.activation = np.asarray(activation_rounds, dtype=np.int64)
            if self.activation.shape != (self.n,) or self.activation.min() < 1:
                raise ValueError("activation_rounds must be n 1-indexed rounds")
        self._rng = make_rng(seed, "vec-engine")
        # An empty plan normalizes to no plan: the fault stream (a separate
        # "faults" label off the trial seed) is then never created, keeping
        # the faultless hot path bit-for-bit unchanged.
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None
        if fault_plan is not None:
            from repro.faults.apply import SingleFaultState

            self._faults: SingleFaultState | None = SingleFaultState(
                fault_plan,
                self.n,
                make_rng(seed, "faults"),
                tag_length=algorithm.tag_length,
            )
        else:
            self._faults = None
        self.state = self.algo.init_state(self.n, make_rng(seed, "vec-init"))
        #: Optional full trace, in the reference engine's record format.
        self.trace = Trace() if collect_trace else None
        self.rounds_executed = 0
        #: Cumulative connections established (2 messages each; the
        #: model's communication-cost unit for experiments like E15).
        self.connections_made = 0
        # Per-round connection callback, used by instrumented experiments
        # (e.g. counting cut-crossing connections in the PPUSH experiment).
        self.on_connections: Callable[[int, np.ndarray, np.ndarray], None] | None = None

    def step(self, r: int) -> None:
        """Execute global round ``r`` (1-indexed)."""
        from repro.graphs.adversary import AdaptiveDynamicGraph

        if isinstance(self.dg, AdaptiveDynamicGraph):
            self.dg.observe(r, self.algo.observable(self.state))
        graph = self.dg.graph_at(r)
        active = self.activation <= r
        local_rounds = np.maximum(r - self.activation + 1, 0)
        rng = self._rng

        faults = self._faults
        if faults is not None:
            # Start-of-round fault events: rejoin resets, then corruption.
            nodes = faults.rejoin_resets(r)
            if nodes.size:
                self.algo.reset_nodes(self.state, nodes, faults.rng)
            for victims in faults.corruption_victims(r):
                self.algo.corrupt_state(self.state, victims, faults.rng)
            up = faults.up_mask(r)
            if up is not None:
                active = active & up

        tags = self.algo.tags(self.state, local_rounds, active, rng)
        sender_mask = (
            self.algo.senders(self.state, tags, local_rounds, active, rng) & active
        )
        if faults is not None:
            # Corrupt at the advertiser's radio: the sender decision used
            # the intended tag; eligibility below sees the corrupted one.
            tags = faults.corrupt_tags(tags, active)

        # Eligibility: target must be active; algorithms may restrict further.
        flat = active[graph.indices]
        algo_flat = self.algo.eligible_flat(
            self.state, tags, graph, sender_mask, local_rounds
        )
        if algo_flat is not None:
            flat = flat & algo_flat

        picks = segmented_random_pick(
            graph.indptr, graph.indices, rng, active=sender_mask, flat_mask=flat
        )
        effective = picks >= 0  # senders that actually issued a proposal
        proposers = np.flatnonzero(effective)
        targets = picks[proposers]
        if self.trace is not None:
            # All issued proposals, ascending by proposer — before the
            # proposer-cannot-receive filter, matching the reference.
            tr_proposals = np.column_stack([proposers, targets]).reshape(-1, 2)

        # A node that issued a proposal cannot receive one.
        keep = ~effective[targets]
        proposers, targets = proposers[keep], targets[keep]

        accepted = segmented_uniform_accept(proposers, targets, self.n, rng)
        acceptors = np.flatnonzero(accepted >= 0)
        winners = accepted[acceptors]

        if faults is not None and acceptors.size:
            # Established connections drop before the payload exchange;
            # connections_made counts only survivors.
            keep = faults.connection_keep(acceptors.size)
            if keep is not None:
                acceptors, winners = acceptors[keep], winners[keep]

        if acceptors.size:
            self.connections_made += int(acceptors.size)
            self.algo.exchange(self.state, winners, acceptors)
            if self.on_connections is not None:
                self.on_connections(r, winners, acceptors)
        elif self.on_connections is not None:
            empty = np.empty(0, dtype=np.int64)
            self.on_connections(r, empty, empty)

        self.algo.end_round(self.state, r, local_rounds, active)

        if self.trace is not None:
            self.trace.append(
                RoundRecord(
                    round_index=r,
                    proposals=tr_proposals,
                    connections=np.column_stack([winners, acceptors]).reshape(-1, 2),
                    tags=np.where(active, tags, -1).astype(np.int64),
                    active=active.copy(),
                )
            )

    def run(self, max_rounds: int, *, check_every: int = 1) -> RunResult:
        """Run until the algorithm's convergence predicate or ``max_rounds``.

        With a fault plan, convergence checks are suppressed until the
        plan's quiesce round (the last scheduled crash edge or corruption
        event): transient events can make an absorbing predicate
        momentarily true-then-false, so only post-quiesce agreement
        certifies stabilization.
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        last_activation = int(self.activation.max())
        gate = self._faults.gate if self._faults is not None else 0
        perma = self._faults.perma_down if self._faults is not None else None
        if perma is None:
            converged = lambda: self.algo.converged(self.state)  # noqa: E731
        else:
            # Permanently crashed nodes are frozen forever; stabilization
            # is agreement among the nodes that can still change state.
            live = ~perma

            def converged() -> bool:
                done = self.algo.node_done(self.state)
                if done is None:
                    return self.algo.converged(self.state)
                return bool(done[live].all())

        for r in range(1, max_rounds + 1):
            self.step(r)
            self.rounds_executed = r
            if r % check_every == 0 and r >= gate and converged():
                return RunResult(
                    stabilized=True,
                    rounds=r,
                    rounds_after_last_activation=max(0, r - last_activation + 1),
                    trace=self.trace,
                )
        return RunResult(
            stabilized=converged(),
            rounds=max_rounds,
            rounds_after_last_activation=max(0, max_rounds - last_activation + 1),
            trace=self.trace,
        )
