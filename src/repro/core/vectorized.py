"""Vectorized round engine for parameter sweeps.

Semantically identical to :class:`~repro.core.engine.ReferenceEngine` but
the round is executed as a handful of NumPy array operations (the
profiling-guided optimization of the per-node loops):

1. the algorithm produces per-node tags and a sender mask;
2. :func:`~repro.util.csrops.segmented_random_pick` chooses each sender's
   proposal target uniformly among its eligible neighbors;
3. proposals to nodes that themselves (effectively) proposed are dropped —
   a proposer cannot receive;
4. :func:`~repro.util.csrops.segmented_uniform_accept` has each remaining
   target accept one proposal uniformly at random;
5. the algorithm applies the state exchange for the connected pairs.

Algorithms plug in via :class:`VectorizedAlgorithm`, operating on a state
object of NumPy arrays.  Each algorithm in :mod:`repro.algorithms` ships
both a per-node protocol (reference semantics) and one of these kernels;
the test suite cross-validates the two statistically.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Callable, Sequence

import numpy as np

from repro.core.trace import RoundRecord, RunResult, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.faults.plan import FaultPlan
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.static import Graph
from repro.util.csrops import (
    gather_rows,
    unique_nodes,
    segmented_random_pick,
    segmented_random_pick_subset,
    segmented_uniform_accept,
    segmented_uniform_accept_pairs,
)
from repro.util.rng import make_rng

__all__ = ["VectorizedAlgorithm", "VectorizedEngine"]

import os

#: Below this vertex count, sparse-activity rounds cannot beat the dense
#: kernels' fixed dispatch overhead; ``auto`` mode stays dense.
_SPARSE_MIN_N = 4096
#: ``auto`` mode runs a sparse round only while the 2-hop frontier covers
#: at most this fraction of the vertices.
_SPARSE_MAX_FRACTION = 0.25


def _resolve_sparse_mode(requested: str | None) -> str:
    """Sparse-round mode: explicit argument, else ``REPRO_SPARSE``, else auto.

    ``force`` engages sparse rounds wherever the algorithm is compatible
    (regardless of size thresholds — used by the conformance fuzzer to
    exercise the sparse path at tiny n); ``off`` disables them; ``auto``
    applies the density heuristics.
    """
    mode = requested if requested is not None else os.environ.get("REPRO_SPARSE", "auto")
    mode = mode.strip().lower() or "auto"
    if mode not in ("auto", "force", "off"):
        raise ValueError(f"sparse mode must be auto/force/off, got {mode!r}")
    return mode


class VectorizedAlgorithm(ABC):
    """Array-kernel form of an algorithm for :class:`VectorizedEngine`.

    State is an algorithm-owned object (typically a small namespace of
    NumPy arrays); the engine threads it through the hooks below.
    """

    #: Advertising tag length ``b`` this algorithm requires.
    tag_length: int = 0

    #: True when the engine may run *sparse-activity rounds* for this
    #: algorithm.  The contract: doneness is absorbing and per-node
    #: (:meth:`node_done` decomposes), state changes only through
    #: :meth:`exchange` (``end_round`` is a no-op), an exchange between two
    #: done nodes changes nothing, and :meth:`sparse_senders` /
    #: :meth:`node_done_subset` are implemented.
    sparse_compatible: bool = False

    #: True when a converged state makes every further round a no-op, so
    #: rounds burned toward a fixed horizon can be counted arithmetically
    #: instead of simulated (see :meth:`VectorizedEngine.run`).
    quiescent_when_done: bool = False

    @abstractmethod
    def init_state(self, n: int, rng: np.random.Generator) -> object:
        """Initial per-network state for ``n`` nodes."""

    @abstractmethod
    def tags(
        self,
        state: object,
        local_rounds: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Advertised tag per node (ignored entries for inactive nodes)."""

    @abstractmethod
    def senders(
        self,
        state: object,
        tags: np.ndarray,
        local_rounds: np.ndarray,
        active: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Boolean mask of nodes that attempt to send a proposal."""

    def eligible_flat(
        self,
        state: object,
        tags: np.ndarray,
        graph: Graph,
        sender_mask: np.ndarray,
        local_rounds: np.ndarray,
    ) -> np.ndarray | None:
        """Optional per-CSR-entry eligibility mask for proposal targets.

        ``None`` means senders choose uniformly among all (active)
        neighbors.  Entry ``i`` of the returned array corresponds to the
        CSR entry ``graph.indices[i]`` in the row of its source vertex.
        """
        return None

    @abstractmethod
    def exchange(
        self, state: object, proposers: np.ndarray, acceptors: np.ndarray
    ) -> None:
        """Apply the symmetric message exchange for the connected pairs."""

    def end_round(
        self,
        state: object,
        round_index: int,
        local_rounds: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Hook after connections (phase-boundary state transitions)."""

    @abstractmethod
    def converged(self, state: object) -> bool:
        """Absorbing stabilization predicate over the current state."""

    def sparse_senders(
        self, state: object, rows: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Sender coin flips for the frontier rows only (sparse rounds).

        Must draw exactly one decision per entry of ``rows`` with the same
        per-node distribution as :meth:`senders` (the RNG *consumption*
        may differ from the dense path — sparse rounds are
        distribution-equivalent, not bit-equivalent, to dense rounds).
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement sparse sender coins"
        )

    def node_done_subset(self, state: object, nodes: np.ndarray) -> np.ndarray:
        """Per-node doneness restricted to ``nodes`` (sparse bookkeeping).

        Default routes through the dense :meth:`node_done`;
        sparse-compatible algorithms override with an O(len(nodes))
        gather so frontier updates never touch the full state.
        """
        done = self.node_done(state)
        if done is None:
            raise NotImplementedError(
                f"{type(self).__name__} has no per-node doneness decomposition"
            )
        return done[nodes]

    def node_done(self, state: object) -> np.ndarray | None:
        """Optional ``(n,)`` per-node form of :meth:`converged`.

        ``converged()`` must equal ``node_done().all()``.  Engines use the
        per-node form to exclude permanently crashed nodes (their state is
        frozen, so demanding their agreement would make stabilization
        unreachable).  ``None`` (the default) means the predicate has no
        per-node decomposition; permanent-crash plans then fall back to
        the whole-network predicate.
        """
        return None

    # -- fault hooks (repro.faults) ----------------------------------------

    def corrupt_state(
        self, state: object, victims: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Overwrite ``victims``' state with arbitrary values.

        Engine hook for :class:`~repro.faults.plan.StateCorruptionEvent`:
        the implementation must replace the victims' algorithm state with
        values drawn from ``rng`` and recompute its convergence target
        over the corrupted state (the semilattice the algorithm computes
        over).  The default raises so unsupported fault plans fail loudly.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement state corruption"
        )

    def reset_nodes(
        self, state: object, nodes: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Restore ``nodes`` to their initial state (crash/rejoin reset).

        Engine hook for :class:`~repro.faults.plan.CrashWindow` rejoins
        with ``reset_on_rejoin``; implementations must also refresh their
        convergence target if the reset can change it.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not implement crash/rejoin reset"
        )

    def observable(self, state: object) -> object | None:
        """What an adaptive adversary may observe each round.

        Spreading-type algorithms return their boolean progress mask (the
        informed set, or "holds the eventual winner"); ``None`` exposes
        nothing.  Consumed by
        :class:`repro.graphs.adversary.AdaptiveDynamicGraph`.
        """
        return None


class VectorizedEngine:
    """Runs a :class:`VectorizedAlgorithm` over a dynamic graph."""

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        algorithm: VectorizedAlgorithm,
        *,
        seed: int | None = None,
        activation_rounds: Sequence[int] | np.ndarray | None = None,
        fault_plan: "FaultPlan | None" = None,
        collect_trace: bool = False,
        sparse: str | None = None,
    ):
        self.dg = dynamic_graph
        self.algo = algorithm
        self.n = dynamic_graph.n
        if activation_rounds is None:
            self.activation = np.ones(self.n, dtype=np.int64)
        else:
            self.activation = np.asarray(activation_rounds, dtype=np.int64)
            if self.activation.shape != (self.n,) or self.activation.min() < 1:
                raise ValueError("activation_rounds must be n 1-indexed rounds")
        self._rng = make_rng(seed, "vec-engine")
        # An empty plan normalizes to no plan: the fault stream (a separate
        # "faults" label off the trial seed) is then never created, keeping
        # the faultless hot path bit-for-bit unchanged.
        if fault_plan is not None and fault_plan.is_empty():
            fault_plan = None
        if fault_plan is not None:
            from repro.faults.apply import SingleFaultState

            self._faults: SingleFaultState | None = SingleFaultState(
                fault_plan,
                self.n,
                make_rng(seed, "faults"),
                tag_length=algorithm.tag_length,
            )
        else:
            self._faults = None
        self.state = self.algo.init_state(self.n, make_rng(seed, "vec-init"))
        #: Optional full trace, in the reference engine's record format.
        self.trace = Trace() if collect_trace else None
        self.rounds_executed = 0
        #: Cumulative connections established (2 messages each; the
        #: model's communication-cost unit for experiments like E15).
        self.connections_made = 0
        # Per-round connection callback, used by instrumented experiments
        # (e.g. counting cut-crossing connections in the PPUSH experiment).
        self.on_connections: Callable[[int, np.ndarray, np.ndarray], None] | None = None
        # -- sparse-activity rounds (large-n path) -------------------------
        # Only engaged when the algorithm certifies compatibility and the
        # run has no features the frontier bookkeeping cannot track
        # (faults, staggered activation, advertising tags, adaptive
        # adversaries).  Sparse rounds are distribution-equivalent to
        # dense rounds over state trajectories; the decision never depends
        # on whether a trace is collected, so traced and untraced runs of
        # one seed stay identical.
        from repro.graphs.adversary import AdaptiveDynamicGraph

        self._sparse_mode = _resolve_sparse_mode(sparse)
        self._sparse_ok = (
            self._sparse_mode != "off"
            and algorithm.sparse_compatible
            and algorithm.tag_length == 0
            and self._faults is None
            and bool((self.activation == 1).all())
            and not isinstance(dynamic_graph, AdaptiveDynamicGraph)
        )
        self._undone_mask: np.ndarray | None = None
        self._undone_idx: np.ndarray | None = None
        self._proposed: np.ndarray | None = None
        self._all_active: np.ndarray | None = None
        #: Live/active mask of the most recent round (``None`` before the
        #: first).  Open-world monitors read it after each ``step``.
        self.last_active: np.ndarray | None = None

    # -- sparse-activity rounds -------------------------------------------

    def _ensure_frontier(self) -> bool:
        """Initialize the undone-node frontier lazily (one O(n) scan)."""
        if self._undone_mask is not None:
            return True
        done = self.algo.node_done(self.state)
        if done is None:
            self._sparse_ok = False
            return False
        self._undone_mask = ~done
        self._undone_idx = np.flatnonzero(self._undone_mask)
        return True

    def _frontier_absorb(self, winners: np.ndarray, acceptors: np.ndarray) -> None:
        """Retire exchange participants that just became done.

        Doneness is absorbing and (for sparse-compatible algorithms) only
        changes through exchanges, so rechecking the round's participants
        keeps the frontier exact at O(connections) per round.
        """
        if self._undone_mask is None:
            return
        parts = np.concatenate([winners, acceptors])
        cand = parts[self._undone_mask[parts]]
        if cand.size == 0:
            return
        cand = unique_nodes(cand)
        fin = cand[self.algo.node_done_subset(self.state, cand)]
        if fin.size:
            self._undone_mask[fin] = False
            self._undone_idx = self._undone_idx[self._undone_mask[self._undone_idx]]

    def _try_sparse_step(self, r: int) -> bool:
        """Run round ``r`` on the 2-hop frontier when profitable.

        The frontier ``S = U ∪ N(U) ∪ N(N(U))`` over the undone set ``U``
        contains every node whose proposal can compete for an exchange
        with an undone endpoint: a state-changing exchange has an endpoint
        in ``U``, its receiver is in ``U ∪ N(U)``, and every rival
        proposer of that receiver is a neighbor of it — hence in ``S``.
        Drawing sender coins only for ``S``, keeping all their proposals,
        and accepting uniformly over the kept proposals therefore yields
        the dense round's exact distribution over state trajectories;
        proposals entirely between passive nodes are no-op exchanges and
        are skipped (``connections_made`` undercounts those no-ops, which
        is why instrumented runs with ``on_connections`` stay dense).
        """
        if not self._sparse_ok or self.on_connections is not None:
            return False
        force = self._sparse_mode == "force"
        n = self.n
        if not force and n < _SPARSE_MIN_N:
            return False
        if not self._ensure_frontier():
            return False
        u_idx = self._undone_idx
        limit = _SPARSE_MAX_FRACTION * n
        if not force and u_idx.size > limit:
            return False
        graph = self.dg.graph_at(r)
        indptr, indices = graph.indptr, graph.indices
        reach = unique_nodes(
            np.concatenate([u_idx, gather_rows(indptr, indices, u_idx)])
        )
        rows = unique_nodes(
            np.concatenate([reach, gather_rows(indptr, indices, reach)])
        )
        if not force and rows.size > limit:
            return False
        if self._all_active is None:
            self._all_active = np.ones(self.n, dtype=bool)
        # Sparse preconditions (sync activation, no faults) mean every
        # node is live this round.
        self.last_active = self._all_active
        self._sparse_step(r, graph, rows)
        return True

    def _sparse_step(self, r: int, graph: Graph, rows: np.ndarray) -> None:
        """One frontier-restricted round (same shape as the dense round)."""
        rng = self._rng
        n = self.n
        coins = self.algo.sparse_senders(self.state, rows, rng)
        senders = rows[coins]
        picks = segmented_random_pick_subset(graph.indptr, graph.indices, rng, senders)
        ok = picks >= 0
        proposers = senders[ok]
        targets = picks[ok]
        if self.trace is not None:
            tr_proposals = np.column_stack([proposers, targets]).reshape(-1, 2)

        # A node that issued a proposal cannot receive one (the dense
        # rule, applied via a persistent O(n) scratch mask).
        if self._proposed is None:
            self._proposed = np.zeros(n, dtype=bool)
        prop = self._proposed
        prop[proposers] = True
        keep = ~prop[targets]
        prop[proposers] = False
        proposers, targets = proposers[keep], targets[keep]

        acceptors, winners = segmented_uniform_accept_pairs(proposers, targets, rng)
        if acceptors.size:
            self.connections_made += int(acceptors.size)
            self.algo.exchange(self.state, winners, acceptors)
            self._frontier_absorb(winners, acceptors)

        if self.trace is not None:
            # tag_length == 0 and all-sync activation are preconditions of
            # the sparse path, so tags are all zeros and everyone is
            # active — same records the dense round would produce.
            self.trace.append(
                RoundRecord(
                    round_index=r,
                    proposals=tr_proposals,
                    connections=np.column_stack([winners, acceptors]).reshape(-1, 2),
                    tags=np.zeros(n, dtype=np.int64),
                    active=np.ones(n, dtype=bool),
                )
            )

    def step(self, r: int) -> None:
        """Execute global round ``r`` (1-indexed)."""
        from repro.graphs.adversary import AdaptiveDynamicGraph

        if self._try_sparse_step(r):
            return
        faults = self._faults
        if isinstance(self.dg, AdaptiveDynamicGraph):
            obs = self.algo.observable(self.state)
            if obs is not None and faults is not None:
                # Dead slots are invisible: the adversary may not react
                # to state frozen in a crashed/departed slot.
                up = faults.up_mask(r)
                if up is not None:
                    obs = np.asarray(obs) & up
            self.dg.observe(r, obs)
        graph = self.dg.graph_at(r)
        active = self.activation <= r
        local_rounds = np.maximum(r - self.activation + 1, 0)
        rng = self._rng

        if faults is not None:
            # Start-of-round fault events: rejoin resets, then corruption.
            nodes = faults.rejoin_resets(r)
            if nodes.size:
                self.algo.reset_nodes(self.state, nodes, faults.rng)
            for victims in faults.corruption_victims(r):
                self.algo.corrupt_state(self.state, victims, faults.rng)
            up = faults.up_mask(r)
            if up is not None:
                active = active & up
        #: Final live/active mask of this round (monitors read it).
        self.last_active = active

        tags = self.algo.tags(self.state, local_rounds, active, rng)
        sender_mask = (
            self.algo.senders(self.state, tags, local_rounds, active, rng) & active
        )
        if faults is not None:
            # Corrupt at the advertiser's radio: the sender decision used
            # the intended tag; eligibility below sees the corrupted one.
            tags = faults.corrupt_tags(tags, active)

        # Eligibility: target must be active; algorithms may restrict further.
        flat = active[graph.indices]
        algo_flat = self.algo.eligible_flat(
            self.state, tags, graph, sender_mask, local_rounds
        )
        if algo_flat is not None:
            flat = flat & algo_flat

        picks = segmented_random_pick(
            graph.indptr, graph.indices, rng, active=sender_mask, flat_mask=flat
        )
        effective = picks >= 0  # senders that actually issued a proposal
        proposers = np.flatnonzero(effective)
        targets = picks[proposers]
        if self.trace is not None:
            # All issued proposals, ascending by proposer — before the
            # proposer-cannot-receive filter, matching the reference.
            tr_proposals = np.column_stack([proposers, targets]).reshape(-1, 2)

        # A node that issued a proposal cannot receive one.
        keep = ~effective[targets]
        proposers, targets = proposers[keep], targets[keep]

        accepted = segmented_uniform_accept(proposers, targets, self.n, rng)
        acceptors = np.flatnonzero(accepted >= 0)
        winners = accepted[acceptors]

        if faults is not None and acceptors.size:
            # Established connections drop before the payload exchange;
            # connections_made counts only survivors.
            keep = faults.connection_keep(acceptors.size)
            if keep is not None:
                acceptors, winners = acceptors[keep], winners[keep]

        if acceptors.size:
            self.connections_made += int(acceptors.size)
            self.algo.exchange(self.state, winners, acceptors)
            self._frontier_absorb(winners, acceptors)
            if self.on_connections is not None:
                self.on_connections(r, winners, acceptors)
        elif self.on_connections is not None:
            empty = np.empty(0, dtype=np.int64)
            self.on_connections(r, empty, empty)

        self.algo.end_round(self.state, r, local_rounds, active)

        if self.trace is not None:
            self.trace.append(
                RoundRecord(
                    round_index=r,
                    proposals=tr_proposals,
                    connections=np.column_stack([winners, acceptors]).reshape(-1, 2),
                    tags=np.where(active, tags, -1).astype(np.int64),
                    active=active.copy(),
                )
            )

    def run(self, max_rounds: int, *, check_every: int = 1) -> RunResult:
        """Run until the algorithm's convergence predicate or ``max_rounds``.

        With a fault plan, convergence checks are suppressed until the
        plan's quiesce round (the last scheduled crash edge or corruption
        event): transient events can make an absorbing predicate
        momentarily true-then-false, so only post-quiesce agreement
        certifies stabilization.
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        last_activation = int(self.activation.max())
        gate = self._faults.gate if self._faults is not None else 0
        perma = self._faults.perma_down if self._faults is not None else None
        if perma is None:
            converged = lambda: self.algo.converged(self.state)  # noqa: E731
        else:
            # Permanently crashed nodes are frozen forever; stabilization
            # is agreement among the nodes that can still change state.
            live = ~perma

            def converged() -> bool:
                done = self.algo.node_done(self.state)
                if done is None:
                    return self.algo.converged(self.state)
                return bool(done[live].all())

        # Quiet-round fast-forward: once every node is done and the
        # algorithm certifies further rounds are no-ops, rounds burned
        # toward the next checkpoint (e.g. fixed-horizon runs with
        # check_every > max_rounds) are counted arithmetically instead of
        # simulated.  The reported round is exactly the one the plain loop
        # would report — the next checkpoint, capped at the horizon —
        # so round-count semantics are unchanged.  Suppressed under fault
        # plans (events could still fire) and while tracing (the skipped
        # rounds' records would be missing).
        fast_forward = (
            self.algo.quiescent_when_done
            and check_every > 1
            and self._faults is None
            and self.trace is None
        )
        for r in range(1, max_rounds + 1):
            self.step(r)
            self.rounds_executed = r
            if r % check_every == 0 and r >= gate and converged():
                return RunResult(
                    stabilized=True,
                    rounds=r,
                    rounds_after_last_activation=max(0, r - last_activation + 1),
                    trace=self.trace,
                )
            if fast_forward and converged():
                rounds = min((r // check_every + 1) * check_every, max_rounds)
                self.rounds_executed = rounds
                return RunResult(
                    stabilized=True,
                    rounds=rounds,
                    rounds_after_last_activation=max(0, rounds - last_activation + 1),
                    trace=self.trace,
                )
        return RunResult(
            stabilized=converged(),
            rounds=max_rounds,
            rounds_after_last_activation=max(0, max_rounds - last_activation + 1),
            trace=self.trace,
        )
