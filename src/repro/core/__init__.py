"""The mobile telephone model: payloads, protocols, and round engines.

Two engines implement the model of paper Section III:

* :class:`~repro.core.engine.ReferenceEngine` — literal per-node
  execution of :class:`~repro.core.protocol.NodeProtocol` objects, with
  every model rule checked (semantic ground truth);
* :class:`~repro.core.vectorized.VectorizedEngine` — NumPy array kernels
  for parameter sweeps, cross-validated against the reference.

:mod:`repro.core.classical` provides the classical telephone model
(unbounded accepts) as the baseline the paper compares against.
"""

from repro.core.payload import (
    UID,
    UIDSpace,
    IDPair,
    Message,
    PayloadBudget,
    BudgetExceeded,
)
from repro.core.protocol import (
    RoundView,
    NodeProtocol,
    LeaderElectionProtocol,
    RumorProtocol,
)
from repro.core.engine import ReferenceEngine, ModelViolation
from repro.core.vectorized import VectorizedEngine, VectorizedAlgorithm
from repro.core.batched import BatchedVectorizedEngine, BatchedAlgorithm
from repro.core.largen import LargeNEngine
from repro.core.trace import Trace, RoundRecord, RunResult, BatchedRunResult
from repro.core.monitor import all_leaders_are, all_leaders_equal, rumor_complete
from repro.core.classical import classical_push_pull_rumor, classical_push_pull_leader

__all__ = [
    "UID",
    "UIDSpace",
    "IDPair",
    "Message",
    "PayloadBudget",
    "BudgetExceeded",
    "RoundView",
    "NodeProtocol",
    "LeaderElectionProtocol",
    "RumorProtocol",
    "ReferenceEngine",
    "ModelViolation",
    "VectorizedEngine",
    "VectorizedAlgorithm",
    "BatchedVectorizedEngine",
    "BatchedAlgorithm",
    "LargeNEngine",
    "Trace",
    "RoundRecord",
    "RunResult",
    "BatchedRunResult",
    "all_leaders_are",
    "all_leaders_equal",
    "rumor_complete",
    "classical_push_pull_rumor",
    "classical_push_pull_leader",
]
