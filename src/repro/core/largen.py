"""Chunked-over-``n`` engine for very large networks (``n = 10^5..10^6``).

The vectorized engine materializes every per-round intermediate at full
network width, so at ``n = 10^6`` each round streams a dozen
million-element temporaries through memory.  This engine executes the
same round semantics in **cache-friendly slabs of ``chunk_nodes``
vertices**:

1. *Pick pass* (per slab): draw the slab's sender coins via the
   algorithm's ``sparse_senders`` hook and choose each sender's proposal
   target with :func:`~repro.util.csrops.segmented_random_pick_subset` —
   the working set per slab is O(``chunk_nodes``) beyond the CSR and the
   compact proposal list it appends to;
2. *Accept pass* (global, over the compact proposal list): apply the
   "a proposer cannot receive" rule through a persistent O(``n``) scratch
   mask, resolve acceptances with
   :func:`~repro.util.csrops.segmented_uniform_accept_pairs`, and apply
   the exchange.

Both passes consume randomness per slab in slab order, so runs are
deterministic in ``(seed, chunk_nodes)``; different chunk sizes are
different (equally valid) samples of the same round distribution.

Once stabilization is near (most nodes done), rounds switch to the same
2-hop **sparse frontier** as
:meth:`repro.core.vectorized.VectorizedEngine._try_sparse_step`, touching
only the undone set and its competition neighborhood — the endgame of a
``10^6``-node run costs the frontier, not the network.

Scope: the engine requires a ``sparse_compatible`` algorithm with
``b = 0``, synchronized activation, no fault plan, and no trace (use the
vectorized engine for instrumented runs — at ``10^6`` nodes a full trace
would dwarf the state anyway).  Initial state is derived with the same
``"vec-init"`` stream label as :class:`~repro.core.vectorized.VectorizedEngine`,
so a ``LargeNEngine(seed=s)`` starts bit-identical to a
``VectorizedEngine(seed=s)``; round randomness is an independent
``"largen-engine"`` stream.
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import RunResult
from repro.core.vectorized import (
    _SPARSE_MAX_FRACTION,
    VectorizedAlgorithm,
)
from repro.graphs.dynamic import DynamicGraph
from repro.graphs.static import Graph
from repro.util.csrops import (
    gather_rows,
    unique_nodes,
    segmented_random_pick_subset,
    segmented_uniform_accept_pairs,
)
from repro.util.rng import make_rng

__all__ = ["LargeNEngine"]

#: Default slab width: 64k vertices keeps the per-slab working set
#: (a few int64/bool arrays of this length) inside L2/L3 on typical CPUs.
DEFAULT_CHUNK_NODES = 65536


class LargeNEngine:
    """Runs a ``sparse_compatible`` :class:`VectorizedAlgorithm` in slabs.

    Parameters
    ----------
    dynamic_graph
        Topology source (adaptive adversaries are rejected: their
        observation protocol assumes full-width rounds).
    algorithm
        Must declare ``sparse_compatible`` and ``tag_length == 0``.
    seed
        Root seed; initial state uses the ``"vec-init"`` label (so it is
        bit-identical to the vectorized engine's), round randomness the
        ``"largen-engine"`` label.
    chunk_nodes
        Slab width of the pick pass (default
        :data:`DEFAULT_CHUNK_NODES`); results depend on it only as
        different samples of the same distribution.
    """

    def __init__(
        self,
        dynamic_graph: DynamicGraph,
        algorithm: VectorizedAlgorithm,
        *,
        seed: int | None = None,
        chunk_nodes: int = DEFAULT_CHUNK_NODES,
    ):
        from repro.graphs.adversary import AdaptiveDynamicGraph

        if not algorithm.sparse_compatible:
            raise ValueError(
                f"{type(algorithm).__name__} is not sparse_compatible; the "
                "chunked engine needs the sparse hooks (use VectorizedEngine)"
            )
        if algorithm.tag_length != 0:
            raise ValueError(
                "the chunked engine supports only b = 0 algorithms "
                f"(got tag_length={algorithm.tag_length})"
            )
        if isinstance(dynamic_graph, AdaptiveDynamicGraph):
            raise ValueError("adaptive dynamic graphs require full-width rounds")
        if chunk_nodes < 1:
            raise ValueError(f"chunk_nodes must be >= 1, got {chunk_nodes}")
        self.dg = dynamic_graph
        self.algo = algorithm
        self.n = dynamic_graph.n
        self.chunk_nodes = int(chunk_nodes)
        self._rng = make_rng(seed, "largen-engine")
        self.state = algorithm.init_state(self.n, make_rng(seed, "vec-init"))
        #: Kept for engine-API parity; this engine never records traces.
        self.trace = None
        self.rounds_executed = 0
        #: Cumulative connections established (2 messages each); sparse
        #: endgame rounds undercount passive done–done connections.
        self.connections_made = 0
        self._proposed = np.zeros(self.n, dtype=bool)
        # Sparse endgame frontier (materialized lazily on first use).
        self._undone_mask: np.ndarray | None = None
        self._undone_idx: np.ndarray | None = None

    # -- sparse endgame ------------------------------------------------------

    def _ensure_frontier(self) -> bool:
        if self._undone_mask is not None:
            return True
        done = self.algo.node_done(self.state)
        if done is None:
            return False
        self._undone_mask = ~np.asarray(done, dtype=bool)
        self._undone_idx = np.flatnonzero(self._undone_mask)
        return True

    def _frontier_absorb(self, winners: np.ndarray, acceptors: np.ndarray) -> None:
        mask = self._undone_mask
        if mask is None:
            return
        parts = np.concatenate([winners, acceptors])
        cand = unique_nodes(parts[mask[parts]])
        if cand.size == 0:
            return
        fin = cand[self.algo.node_done_subset(self.state, cand)]
        if fin.size:
            mask[fin] = False
            assert self._undone_idx is not None
            self._undone_idx = self._undone_idx[mask[self._undone_idx]]

    def _try_sparse_step(self, r: int) -> bool:
        """Endgame path: same 2-hop frontier as the vectorized engine."""
        if not self._ensure_frontier():
            return False
        u_idx = self._undone_idx
        assert u_idx is not None
        limit = _SPARSE_MAX_FRACTION * self.n
        if u_idx.size > limit:
            return False
        graph = self.dg.graph_at(r)
        indptr, indices = graph.indptr, graph.indices
        reach = unique_nodes(
            np.concatenate([u_idx, gather_rows(indptr, indices, u_idx)])
        )
        rows = unique_nodes(
            np.concatenate([reach, gather_rows(indptr, indices, reach)])
        )
        if rows.size > limit:
            return False
        rng = self._rng
        coins = self.algo.sparse_senders(self.state, rows, rng)
        senders = rows[coins]
        picks = segmented_random_pick_subset(indptr, indices, rng, senders)
        ok = picks >= 0
        self._resolve(picks[ok], senders[ok])
        return True

    # -- chunked round -------------------------------------------------------

    def _resolve(self, targets: np.ndarray, proposers: np.ndarray) -> None:
        """Accept pass: proposer-cannot-receive, accept, exchange."""
        prop = self._proposed
        prop[proposers] = True
        keep = ~prop[targets]
        prop[proposers] = False
        proposers, targets = proposers[keep], targets[keep]
        acceptors, winners = segmented_uniform_accept_pairs(
            proposers, targets, self._rng
        )
        if acceptors.size:
            self.connections_made += int(acceptors.size)
            self.algo.exchange(self.state, winners, acceptors)
            self._frontier_absorb(winners, acceptors)

    def step(self, r: int) -> None:
        """Execute global round ``r`` (1-indexed)."""
        if self._try_sparse_step(r):
            return
        graph: Graph = self.dg.graph_at(r)
        indptr, indices = graph.indptr, graph.indices
        rng = self._rng
        n = self.n
        prop_parts: list[np.ndarray] = []
        targ_parts: list[np.ndarray] = []
        for lo in range(0, n, self.chunk_nodes):
            rows = np.arange(lo, min(lo + self.chunk_nodes, n), dtype=np.int64)
            coins = self.algo.sparse_senders(self.state, rows, rng)
            senders = rows[coins]
            picks = segmented_random_pick_subset(indptr, indices, rng, senders)
            ok = picks >= 0
            prop_parts.append(senders[ok])
            targ_parts.append(picks[ok])
        self._resolve(np.concatenate(targ_parts), np.concatenate(prop_parts))

    # -- full runs -----------------------------------------------------------

    def run(self, max_rounds: int, *, check_every: int = 1) -> RunResult:
        """Run until the algorithm's convergence predicate or ``max_rounds``.

        Checking every ``check_every`` rounds quantizes the reported
        round count exactly as in the vectorized engine; for
        ``quiescent_when_done`` algorithms converged stretches between
        checkpoints are burned arithmetically (same round arithmetic as
        :meth:`VectorizedEngine.run`).
        """
        if max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        fast_forward = self.algo.quiescent_when_done and check_every > 1
        for r in range(1, max_rounds + 1):
            self.step(r)
            self.rounds_executed = r
            converged = bool(self.algo.converged(self.state))
            if r % check_every == 0 and converged:
                return RunResult(
                    stabilized=True,
                    rounds=r,
                    rounds_after_last_activation=r,
                    trace=None,
                )
            if fast_forward and converged:
                rounds = min((r // check_every + 1) * check_every, max_rounds)
                self.rounds_executed = rounds
                return RunResult(
                    stabilized=True,
                    rounds=rounds,
                    rounds_after_last_activation=rounds,
                    trace=None,
                )
        return RunResult(
            stabilized=bool(self.algo.converged(self.state)),
            rounds=max_rounds,
            rounds_after_last_activation=max_rounds,
            trace=None,
        )
