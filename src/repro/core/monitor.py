"""Stabilization predicates for engine runs.

The problem definition (paper Section IV) calls the system *stabilized* at
round ``r`` when from ``r`` on every node's ``leader`` variable holds the
same UID forever.  Simulations cannot check "forever" directly, so each
predicate here is an **absorbing** condition of the algorithm it serves:
once true it provably stays true (the underlying quantity — minimum UID
seen, smallest ID pair — is monotone), so observing it once certifies
stabilization.

Predicates quantify over the protocols they are handed.  With a fault
plan containing *permanent* crashes (``end=None`` windows) the engines
pass only the live protocols — a permanently crashed node's state is
frozen forever, so demanding its agreement would make stabilization
unreachable whenever the winner spreads after the crash.  Callers
evaluating predicates themselves should filter the same way via
:func:`excluding_permanently_crashed`.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

import numpy as np

from repro.core.payload import UID
from repro.core.protocol import LeaderElectionProtocol, RumorProtocol

__all__ = [
    "LiveAgreementMonitor",
    "all_leaders_are",
    "all_leaders_equal",
    "excluding_permanently_crashed",
    "live_population_agrees",
    "rumor_complete",
]

_P = TypeVar("_P")


def excluding_permanently_crashed(protocols: Sequence[_P], fault_plan) -> list[_P]:
    """The protocols of nodes that never permanently crash under ``fault_plan``.

    The sub-sequence a stabilization predicate should quantify over when
    the plan contains ``end=None`` crash windows or membership slots that
    never return; with no plan (or nothing permanent) this is simply
    ``list(protocols)``.
    """
    if fault_plan is None:
        return list(protocols)
    dead: set[int] = set()
    if fault_plan.crashes is not None:
        dead |= {w.node for w in fault_plan.crashes.windows if w.end is None}
    if fault_plan.membership is not None:
        dead |= set(fault_plan.membership.never_return())
    if not dead:
        return list(protocols)
    return [p for v, p in enumerate(protocols) if v not in dead]


def all_leaders_are(winner: UID):
    """Predicate: every node's ``leader`` equals the known eventual winner.

    For min-UID algorithms the winner is the global minimum UID, and "all
    hold the minimum" is absorbing because nodes only ever adopt smaller
    candidates.
    """

    def predicate(protocols: Sequence[LeaderElectionProtocol]) -> bool:
        return all(p.leader == winner for p in protocols)

    return predicate


def all_leaders_equal(protocols: Sequence[LeaderElectionProtocol]) -> bool:
    """All ``leader`` variables currently agree (not necessarily absorbing).

    Useful for inspecting transient agreement; stabilization checks should
    prefer :func:`all_leaders_are`.  An empty sequence agrees vacuously.
    """
    if not protocols:
        return True
    first = protocols[0].leader
    return all(p.leader == first for p in protocols)


def rumor_complete(protocols: Sequence[RumorProtocol]) -> bool:
    """Every node knows the rumor (absorbing: knowledge is never lost)."""
    return all(p.informed for p in protocols)


def live_population_agrees(values, live, *, leader_keys=None) -> bool:
    """One round of the open-world agreement predicate.

    Election mode (``leader_keys`` given): every live slot holds the same
    value, and that value is the key of some *live* slot — agreement on a
    departed leader does not count.  Rumor mode (``leader_keys=None``):
    ``values`` is boolean and every live slot is informed.  An empty live
    population never agrees (there is nobody to lead).
    """
    live = np.asarray(live, dtype=bool)
    if not live.any():
        return False
    values = np.asarray(values)
    if leader_keys is None:
        return bool(values[live].all())
    lv = values[live]
    if not (lv == lv[0]).all():
        return False
    return bool((np.asarray(leader_keys)[live] == lv[0]).any())


class LiveAgreementMonitor:
    """Open-world stabilization: the live population agrees, stable for ``τ``.

    Under open-world membership no predicate over node state is absorbing
    — a join resets a slot to fresh state, and the agreed leader itself
    may depart — so the closed-world monitors above do not apply.  The
    Augustine et al. notion instead asks that *the currently-live
    population* agree on a *live* leader and keep that same agreement for
    ``stable_for`` consecutive rounds.  Feed this monitor one observation
    per round (engines expose the live mask as ``last_active``); it
    latches :attr:`stabilized_round` — the first round of the certifying
    streak — once the condition has held ``stable_for`` rounds in a row.

    Churn after the latch is deliberately ignored: the tournament scores
    *whether and when* a run first reached τ-stable agreement, and a
    latched monitor keeps reporting that round.
    """

    def __init__(self, stable_for: int, *, leader_keys=None):
        if stable_for < 1:
            raise ValueError(f"stable_for must be >= 1, got {stable_for}")
        self.stable_for = int(stable_for)
        self._keys = None if leader_keys is None else np.asarray(leader_keys)
        self._last_round = 0
        self._streak = 0
        self._streak_value: object = None
        self.stabilized_round: int | None = None

    @property
    def stabilized(self) -> bool:
        return self.stabilized_round is not None

    def observe(self, r: int, values, live) -> bool:
        """Record round ``r``; return whether stabilization is certified."""
        if self._last_round and r != self._last_round + 1:
            raise ValueError(
                f"observe() must be called once per round in order; "
                f"got round {r} after {self._last_round}"
            )
        self._last_round = r
        if self.stabilized:
            return True
        agrees = live_population_agrees(values, live, leader_keys=self._keys)
        if not agrees:
            self._streak = 0
            self._streak_value = None
            return False
        if self._keys is None:
            value: object = True
        else:
            value = np.asarray(values)[np.asarray(live, dtype=bool)][0].item()
        if self._streak > 0 and value == self._streak_value:
            self._streak += 1
        else:
            self._streak = 1
            self._streak_value = value
        if self._streak >= self.stable_for:
            self.stabilized_round = r - self._streak + 1
        return self.stabilized
