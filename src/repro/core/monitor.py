"""Stabilization predicates for engine runs.

The problem definition (paper Section IV) calls the system *stabilized* at
round ``r`` when from ``r`` on every node's ``leader`` variable holds the
same UID forever.  Simulations cannot check "forever" directly, so each
predicate here is an **absorbing** condition of the algorithm it serves:
once true it provably stays true (the underlying quantity — minimum UID
seen, smallest ID pair — is monotone), so observing it once certifies
stabilization.

Predicates quantify over the protocols they are handed.  With a fault
plan containing *permanent* crashes (``end=None`` windows) the engines
pass only the live protocols — a permanently crashed node's state is
frozen forever, so demanding its agreement would make stabilization
unreachable whenever the winner spreads after the crash.  Callers
evaluating predicates themselves should filter the same way via
:func:`excluding_permanently_crashed`.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.core.payload import UID
from repro.core.protocol import LeaderElectionProtocol, RumorProtocol

__all__ = [
    "all_leaders_are",
    "all_leaders_equal",
    "excluding_permanently_crashed",
    "rumor_complete",
]

_P = TypeVar("_P")


def excluding_permanently_crashed(protocols: Sequence[_P], fault_plan) -> list[_P]:
    """The protocols of nodes that never permanently crash under ``fault_plan``.

    The sub-sequence a stabilization predicate should quantify over when
    the plan contains ``end=None`` crash windows; with no plan (or no
    permanent crashes) this is simply ``list(protocols)``.
    """
    if fault_plan is None or fault_plan.crashes is None:
        return list(protocols)
    dead = {
        w.node for w in fault_plan.crashes.windows if w.end is None
    }
    if not dead:
        return list(protocols)
    return [p for v, p in enumerate(protocols) if v not in dead]


def all_leaders_are(winner: UID):
    """Predicate: every node's ``leader`` equals the known eventual winner.

    For min-UID algorithms the winner is the global minimum UID, and "all
    hold the minimum" is absorbing because nodes only ever adopt smaller
    candidates.
    """

    def predicate(protocols: Sequence[LeaderElectionProtocol]) -> bool:
        return all(p.leader == winner for p in protocols)

    return predicate


def all_leaders_equal(protocols: Sequence[LeaderElectionProtocol]) -> bool:
    """All ``leader`` variables currently agree (not necessarily absorbing).

    Useful for inspecting transient agreement; stabilization checks should
    prefer :func:`all_leaders_are`.  An empty sequence agrees vacuously.
    """
    if not protocols:
        return True
    first = protocols[0].leader
    return all(p.leader == first for p in protocols)


def rumor_complete(protocols: Sequence[RumorProtocol]) -> bool:
    """Every node knows the rumor (absorbing: knowledge is never lost)."""
    return all(p.informed for p in protocols)
