"""The classical telephone model, as a baseline engine.

The classical model (Frieze-Grimmett) differs from the mobile telephone
model in the one property the paper identifies as decisive: a node may
accept an **unbounded** number of incoming connections per round.  In the
classical PUSH-PULL strategy every node calls one uniformly random
neighbor each round and the rumor crosses each call in both directions.

The paper uses this model as the reference point: on stable graphs,
classical PUSH-PULL spreads a rumor in ``O((1/α)·polylog n)`` rounds,
whereas blind gossip in the mobile model needs ``Θ(Δ²)`` more — the cost
of the single-connection restriction (experiment E10).
"""

from __future__ import annotations

import numpy as np

from repro.core.trace import RunResult
from repro.graphs.dynamic import DynamicGraph
from repro.util.csrops import segmented_random_pick
from repro.util.rng import make_rng

__all__ = ["classical_push_pull_rumor", "classical_push_pull_leader"]


def classical_push_pull_rumor(
    dg: DynamicGraph,
    source: int,
    *,
    max_rounds: int,
    seed: int | None = None,
) -> RunResult:
    """Classical-model PUSH-PULL rumor spreading from ``source``.

    Each round every node calls one uniformly random neighbor; a call
    between an informed and an uninformed endpoint informs the latter
    (PUSH if the caller is informed, PULL otherwise).  Unbounded accepts:
    every call connects.

    Returns a :class:`~repro.core.trace.RunResult` whose ``rounds`` is the
    first round after which all nodes are informed.
    """
    n = dg.n
    if not 0 <= source < n:
        raise ValueError("source out of range")
    rng = make_rng(seed, "classical-rumor")
    informed = np.zeros(n, dtype=bool)
    informed[source] = True
    for r in range(1, max_rounds + 1):
        graph = dg.graph_at(r)
        picks = segmented_random_pick(graph.indptr, graph.indices, rng)
        callers = np.flatnonzero(picks >= 0)
        callees = picks[callers]
        crossed = informed[callers] | informed[callees]
        informed[callers[crossed]] = True
        informed[callees[crossed]] = True
        if informed.all():
            return RunResult(stabilized=True, rounds=r, rounds_after_last_activation=r)
    return RunResult(
        stabilized=bool(informed.all()),
        rounds=max_rounds,
        rounds_after_last_activation=max_rounds,
    )


def classical_push_pull_leader(
    dg: DynamicGraph,
    uid_keys: np.ndarray,
    *,
    max_rounds: int,
    seed: int | None = None,
) -> RunResult:
    """Classical-model min-UID gossip (leader election baseline).

    Every node calls one random neighbor per round and both endpoints keep
    the smaller of their current minimum UIDs.  Stabilizes when all nodes
    hold the global minimum.
    """
    n = dg.n
    keys = np.asarray(uid_keys, dtype=np.int64)
    if keys.shape != (n,):
        raise ValueError("uid_keys must have one key per vertex")
    rng = make_rng(seed, "classical-leader")
    best = keys.copy()
    target_key = int(keys.min())
    for r in range(1, max_rounds + 1):
        graph = dg.graph_at(r)
        picks = segmented_random_pick(graph.indptr, graph.indices, rng)
        callers = np.flatnonzero(picks >= 0)
        callees = picks[callers]
        lo = np.minimum(best[callers], best[callees])
        # Unbounded accepts: apply all calls; a callee contacted repeatedly
        # ends with the min over its calls via the minimum-reduce below.
        np.minimum.at(best, callers, lo)
        np.minimum.at(best, callees, lo)
        if (best == target_key).all():
            return RunResult(stabilized=True, rounds=r, rounds_after_last_activation=r)
    return RunResult(
        stabilized=bool((best == target_key).all()),
        rounds=max_rounds,
        rounds_after_last_activation=max_rounds,
    )
