"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that editable
installs work in offline environments whose setuptools lacks PEP 660
support (no `wheel` package available).
"""

from setuptools import setup

setup()
